"""Compile-time join planning: detect equi-join loops in the rewritten query.

After normalization, early updates and if-pushdown, a value-based join
(XMark Q8/Q9) reaches the evaluator as an inner for-loop whose body is
*gated* by a single equi-comparison ``C`` between a path on the loop
variable and a path on an outer variable: every output-producing leaf of
the body sits under ``if C then ... else ()``.  (If-pushdown copies the
condition in front of every output item; early updates may interpose
one-iteration loops — ``for $out in $s/path return if C then $out`` — so
the gate is found by recursion, not by shape-matching the top level.)

:func:`compute_join_plan` walks the rewritten AST and records every loop
of that shape as a :class:`JoinSite`, keyed by the loop node's identity.
At run time the evaluator consults the plan per for-loop and, on a hit,
builds a hash index over the inner step keyed by the join path
(``repro.engine.relops.hashjoin``) and evaluates the original body only
for probed matches — sound because a gated body produces no output and no
role changes for non-matching bindings, and the body re-checks ``C``
itself, so the probe only has to be value-exact with the ``=`` semantics.
Anything that deviates — a where clause, a non-``=`` operator, mixed
gate conditions, a signoff inside the body (its execution count would
change), positional predicates on the loop step, a gate referencing a
variable bound inside the body — is left to the nested-loop path, so
planning can only ever be a performance decision, never a semantic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xquery.ast import (
    Comparison,
    Condition,
    Empty,
    Expr,
    ForLoop,
    IfThenElse,
    PathOperand,
    Query,
    Sequence,
    SignOff,
    walk,
)
from repro.xquery.paths import Path, format_path

__all__ = ["JoinSite", "JoinPlan", "compute_join_plan"]


@dataclass(frozen=True, slots=True)
class JoinSite:
    """One plannable equi-join loop."""

    var: str  # the inner loop variable (the build side)
    source: str  # the loop's source variable
    inner_path: Path  # key path on the loop variable
    outer_var: str  # the probe-side variable
    outer_path: Path  # key path on the probe-side variable
    body: Expr  # the loop body, evaluated once per probed match

    def describe(self) -> str:
        return (
            f"for {self.var} in {self.source}: "
            f"{self.var}{format_path(self.inner_path)} = "
            f"{self.outer_var}{format_path(self.outer_path)}"
        )


@dataclass
class JoinPlan:
    """Join sites of one rewritten query, keyed by ``id()`` of the loop."""

    sites: dict[int, JoinSite] = field(default_factory=dict)

    def site_for(self, loop: ForLoop) -> JoinSite | None:
        return self.sites.get(id(loop))

    def __bool__(self) -> bool:
        return bool(self.sites)

    def __len__(self) -> int:
        return len(self.sites)

    def describe(self) -> list[str]:
        return [site.describe() for site in self.sites.values()]


def compute_join_plan(query: Query) -> JoinPlan:
    """Detect every equi-join loop in a rewritten (core) query."""
    plan = JoinPlan()
    for expr in walk(query.root):
        if isinstance(expr, ForLoop):
            site = _detect(expr)
            if site is not None:
                plan.sites[id(expr)] = site
    return plan


#: Sentinel for "the body has an un-gated output or a foreign shape".
_UNGATED = object()


def _detect(loop: ForLoop) -> JoinSite | None:
    if loop.where is not None or len(loop.path) != 1:
        return None
    step = loop.path[0]
    if step.first or step.last:
        return None
    inner_vars: set[str] = set()
    for expr in walk(loop.body):
        if isinstance(expr, SignOff):
            # A signoff must execute once per binding, matched or not.
            return None
        if isinstance(expr, ForLoop):
            inner_vars.add(expr.var)
    if loop.var in inner_vars:  # rebound inside the body: give up
        return None
    cond = _gating_condition(loop.body)
    if cond is _UNGATED or cond is None:
        return None
    if not isinstance(cond, Comparison) or cond.op != "=":
        return None
    left, right = cond.left, cond.right
    if not (isinstance(left, PathOperand) and isinstance(right, PathOperand)):
        return None
    if left.var == loop.var and right.var != loop.var:
        inner, outer = left, right
    elif right.var == loop.var and left.var != loop.var:
        inner, outer = right, left
    else:
        return None
    if outer.var in inner_vars:  # the gate must be loop-invariant
        return None
    return JoinSite(
        var=loop.var,
        source=loop.source,
        inner_path=inner.path,
        outer_var=outer.var,
        outer_path=outer.path,
        body=loop.body,
    )


def _gating_condition(expr: Expr) -> "Condition | None | object":
    """The single condition gating every output of ``expr``.

    Returns the condition, ``None`` when the expression produces nothing
    at all (trivially gated), or :data:`_UNGATED` when some output escapes
    a gate or two gates disagree.
    """
    if isinstance(expr, Empty):
        return None
    if isinstance(expr, Sequence):
        cond: "Condition | None" = None
        for item in expr.items:
            c = _gating_condition(item)
            if c is _UNGATED:
                return _UNGATED
            if c is not None:
                if cond is None:
                    cond = c
                elif c != cond:
                    return _UNGATED
        return cond
    if isinstance(expr, IfThenElse):
        if not isinstance(expr.else_branch, Empty):
            return _UNGATED
        return expr.cond
    if isinstance(expr, ForLoop):
        return _gating_condition(expr.body)
    return _UNGATED
