"""Elimination of redundant roles (Section 6, Figure 12).

The paper observes that for the introduction's query the binding roles r3
(of ``$x``) and r6 (of ``$b``) can be dropped: query evaluation and active
garbage collection still work, and both memory and runtime benefit.  It says
redundant roles "can be detected by inspecting projection trees" without
giving an algorithm; we implement two conservative criteria that together
reproduce Figure 12 and are safe by construction:

Criterion A (self-coverage)
    The variable has a bare ``dos::node()`` dependency (it is output as a
    whole, like ``$x`` in the introduction).  That dependency's role is
    assigned to exactly the nodes the binding role would mark — with the
    same multiplicity, at the same arrival — and is removed in the same
    signOff batch.  The binding role is therefore subsumed.

Criterion B (vacuous body + sibling/parent coverage)
    The binding role of ``$z`` may be dropped when

    1. the loop body of ``$z`` emits nothing whenever the projected subtree
       below a binding is empty (*vacuous*), so skipping bindings the buffer
       no longer holds cannot change the result;
    2. the loop step uses the child axis (bindings sit at a fixed tag path,
       so they can never arrive inside an already signed-off region); and
    3. some dependency of a sibling variable (same parent variable) or of
       the parent itself matches every node the binding role would mark
       (*arrival coverage*), so the node is still buffered when it arrives.

    In Figure 12 the ``dos::node()`` dependency of ``$x`` (pattern
    ``/bib/*/dos::node()``) covers the bindings of ``$b`` (pattern
    ``/bib/book``), and ``$b``'s body only outputs titles drawn from the
    binding's subtree: both conditions hold and r6 is eliminated.

Eliminated roles are cleared from the projection tree (the node remains for
matching continuation and promotion prevention, but matches no longer force
preservation) and their signOff statements are dropped from the query.
"""

from __future__ import annotations

from repro.analysis.projection_tree import ProjectionTree
from repro.analysis.roles import Role
from repro.xquery.ast import (
    And,
    CloseTag,
    Comparison,
    Condition,
    Element,
    Empty,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    Not,
    OpenTag,
    Or,
    PathOperand,
    PathOutput,
    Query,
    ROOT_VAR,
    Sequence,
    SignOff,
    TextLiteral,
    TrueCond,
    VarRef,
    sequence_of,
)
from repro.xquery.normalize import map_expr
from repro.xquery.paths import Axis, Path, Step, dos_node
from repro.xquery.semantics import QueryVariables

__all__ = ["eliminate_redundant_roles", "pattern_contains", "is_vacuous_body"]


# ---------------------------------------------------------------------------
# Pattern containment
# ---------------------------------------------------------------------------


def pattern_contains(container: Path, contained: Path) -> bool:
    """Is every document path matched by ``contained`` matched by ``container``?

    Sound subset construction: a state is the set of positions in
    ``container`` still to be matched; steps of ``contained`` drive the
    simulation.  The check must be *universal* over the document paths the
    contained pattern generates: a descendant step of ``contained`` inserts
    arbitrarily many intermediate nodes with arbitrary labels, so only
    container positions sitting at descendant/dos steps (which absorb any
    gap uniformly) survive it.  Trailing ``dos::node()`` steps of
    ``container`` may self-bind, so a final state is accepting when all
    remaining container steps are ``dos::node()``.  The result errs on the
    side of ``False`` (safe for redundancy elimination).
    """
    positions = {0}

    def advance(positions: set[int], step: Step) -> set[int]:
        """One document level whose node satisfies ``step.test``."""
        result: set[int] = set()
        for i in positions:
            if i >= len(container):
                continue
            candidate = container[i]
            if candidate.axis in (Axis.DESCENDANT, Axis.DOS):
                result.add(i)  # the container step may bind deeper
            if (
                candidate.test.contains(step.test)
                and not candidate.first
                and not candidate.last
            ):
                result.add(i + 1)
        return result

    for step in contained:
        if step.first:
            # A [1]-predicate restricts the contained pattern; treating it
            # as unrestricted is conservative for the container check.
            step = step.without_first()
        if step.axis in (Axis.DESCENDANT, Axis.DOS):
            # Arbitrary gap: keep only positions that absorb it uniformly.
            positions = {
                i
                for i in positions
                if i < len(container)
                and container[i].axis in (Axis.DESCENDANT, Axis.DOS)
            }
        positions = advance(positions, step)
        if not positions:
            return False

    def accepting(i: int) -> bool:
        return all(container[j] == dos_node() for j in range(i, len(container)))

    return any(accepting(i) for i in positions)


# ---------------------------------------------------------------------------
# Vacuous bodies
# ---------------------------------------------------------------------------


def is_vacuous_body(body: Expr, var: str) -> bool:
    """Does ``body`` emit nothing when ``var``'s projected subtree is empty?

    SignOff statements never produce output and are ignored.  ``derived``
    tracks variables bound (transitively) from ``var``: loops over derived
    sources run zero times on an empty subtree.
    """

    def vacuous(expr: Expr, derived: frozenset[str]) -> bool:
        if isinstance(expr, (Empty, SignOff)):
            return True
        if isinstance(expr, Sequence):
            return all(vacuous(item, derived) for item in expr.items)
        if isinstance(expr, ForLoop):
            if expr.source in derived:
                return True
            return vacuous(expr.body, derived)
        if isinstance(expr, IfThenElse):
            if vacuous(expr.then_branch, derived) and vacuous(
                expr.else_branch, derived
            ):
                return True
            return (
                vacuous(expr.else_branch, derived)
                and _condition_safe(expr.cond, derived, positive=True)
            )
        if isinstance(expr, PathOutput):
            # Emits only nodes drawn from the (empty) subtree.
            return expr.var in derived
        # VarRef emits the binding node itself (criterion A territory);
        # Element, OpenTag, CloseTag, TextLiteral emit output unconditionally.
        return False

    return vacuous(body, frozenset({var}) | _derived_vars(body, var))


def _derived_vars(body: Expr, var: str) -> frozenset[str]:
    derived = {var}
    changed = True
    while changed:
        changed = False

        def collect(node: Expr) -> Expr:
            nonlocal changed
            if isinstance(node, ForLoop) and node.source in derived:
                if node.var not in derived:
                    derived.add(node.var)
                    changed = True
            return node

        map_expr(body, collect)
    return frozenset(derived)


def _condition_safe(cond: Condition, derived: frozenset[str], positive: bool) -> bool:
    """Is ``cond`` guaranteed false when the subtree is empty?

    Atoms over derived variables are false on an empty subtree under
    positive polarity; anything else (literals' truth is unknown, unrelated
    variables, ``true()``) is unsafe.
    """
    if isinstance(cond, Exists):
        return positive and cond.var in derived
    if isinstance(cond, Comparison):
        vars_in = [
            op.var
            for op in (cond.left, cond.right)
            if isinstance(op, PathOperand)
        ]
        return positive and bool(vars_in) and all(v in derived for v in vars_in)
    if isinstance(cond, And):
        if positive:
            return _condition_safe(cond.left, derived, True) or _condition_safe(
                cond.right, derived, True
            )
        return _condition_safe(cond.left, derived, False) and _condition_safe(
            cond.right, derived, False
        )
    if isinstance(cond, Or):
        if positive:
            return _condition_safe(cond.left, derived, True) and _condition_safe(
                cond.right, derived, True
            )
        return _condition_safe(cond.left, derived, False) or _condition_safe(
            cond.right, derived, False
        )
    if isinstance(cond, Not):
        return _condition_safe(cond.operand, derived, not positive)
    return False  # TrueCond


# ---------------------------------------------------------------------------
# The elimination pass
# ---------------------------------------------------------------------------


def eliminate_redundant_roles(
    query: Query,
    variables: QueryVariables,
    tree: ProjectionTree,
) -> tuple[Query, list[Role]]:
    """Drop redundant binding roles from the tree and the rewritten query.

    Returns the cleaned query and the list of eliminated roles.
    """
    eliminated: list[Role] = []
    for var in variables:
        if var == ROOT_VAR:
            continue
        node = tree.var_nodes.get(var)
        if node is None or node.role is None:
            continue
        if _criterion_a(var, tree) or _criterion_b(var, variables, tree):
            eliminated.append(node.role)
            node.role = None

    if not eliminated:
        return query, []
    dropped = set(eliminated)

    def transform(expr: Expr) -> Expr:
        if isinstance(expr, Sequence):
            kept = [item for item in expr.items if not _drops(item, dropped)]
            return sequence_of(kept)
        if _drops(expr, dropped):
            return Empty()
        return expr

    root = map_expr(query.root, transform)
    assert isinstance(root, Element)
    return Query(root), eliminated


def _drops(expr: Expr, dropped: set[Role]) -> bool:
    return isinstance(expr, SignOff) and expr.role in dropped


def _criterion_a(var: str, tree: ProjectionTree) -> bool:
    """A bare ``dos::node()`` dependency subsumes the binding role."""
    bare = (dos_node(),)
    return any(dep.path == bare for dep, _role in tree.dependency_roles(var))


def _criterion_b(var: str, variables: QueryVariables, tree: ProjectionTree) -> bool:
    info = variables.info(var)
    loop = info.loop
    if loop is None or len(loop.path) != 1 or loop.path[0].axis is not Axis.CHILD:
        return False
    if not is_vacuous_body(loop.body, var):
        return False
    parent = info.parent
    if parent is None:
        return False
    var_pattern = tree.var_nodes[var].path_from_root()
    # Coverage by a dependency of the parent variable or of a sibling.
    candidates = [parent] + [
        sibling for sibling in variables.children(parent) if sibling != var
    ]
    for candidate in candidates:
        anchor = tree.var_nodes.get(candidate)
        if anchor is None:
            continue
        for dep, role in tree.dependency_roles(candidate):
            if role is None:
                continue
            pattern = anchor.path_from_root() + dep.path
            if pattern_contains(pattern, var_pattern):
                return True
    return False
