"""Static insertion of signOff statements (Section 4, Figures 8 and 9).

Two rewrite rules place the batches:

* the query's root constructor ``<a> alpha </a>`` becomes
  ``<a> (alpha, suQ($root)) </a>``,
* every for-loop ``for $x in $y/s return alpha`` becomes
  ``for $x in $y/s return (alpha, suQ($x))``.

Algorithm ``suQ($x)`` emits, for every variable ``$z`` with
``fsaQ($z) = $x`` (in introduction order, so ``$x`` itself comes first when
it is straight):

* ``signOff($x/varpath($x,$z), bindingRole($z))`` — unless ``$z`` is
  ``$root``, which has no binding role, and
* ``signOff($x/varpath($x,$z)/pi, r)`` for each ``<pi, r>`` in ``dep($z)``.

Note on the paper's rule (1): as printed it would emit a per-binding
signOff for *every* variable at its own loop, but Figure 9 shows the
binding role of the non-straight ``$b`` being removed once, at ``$root``
scope end, via ``signOff($root//b, r2)``.  Treating the binding role as an
implicit dependency ``<eps, r>`` handled by the ``fsa`` machinery (as done
here) reproduces both Figure 9 and the introduction's rewritten query.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.projection_tree import ProjectionTree
from repro.analysis.roles import Role
from repro.analysis.straight import StraightInfo
from repro.xquery.ast import (
    Element,
    Empty,
    Expr,
    ForLoop,
    Query,
    ROOT_VAR,
    SignOff,
    sequence_of,
)
from repro.xquery.normalize import map_expr
from repro.xquery.semantics import QueryVariables

__all__ = ["su_q", "insert_signoffs", "strip_signoffs"]


def su_q(
    var: str,
    variables: QueryVariables,
    straight: StraightInfo,
    tree: ProjectionTree,
) -> list[SignOff]:
    """Compute the signOff batch issued at the end of ``var``'s scope."""
    batch: list[SignOff] = []
    for z in straight.variables_with_fsa(var):
        sigma = variables.variable_path(var, z)
        if z != ROOT_VAR:
            role = tree.binding_role(z)
            if role is not None:
                batch.append(SignOff(var, sigma, role))
        for path, role in tree.signoff_entries.get(z, []):
            batch.append(SignOff(var, sigma + path, role))
    return batch


def insert_signoffs(
    query: Query,
    variables: QueryVariables,
    straight: StraightInfo,
    tree: ProjectionTree,
) -> Query:
    """Apply the two static rewrite rules to the whole query."""

    def transform(node: Expr) -> Expr:
        if isinstance(node, ForLoop):
            batch = su_q(node.var, variables, straight, tree)
            if batch:
                body = sequence_of([node.body, *batch])
                return ForLoop(node.var, node.source, node.path, body, node.where)
        return node

    root = map_expr(query.root, transform)
    assert isinstance(root, Element)
    root_batch = su_q(ROOT_VAR, variables, straight, tree)
    if root_batch:
        root = Element(root.tag, sequence_of([root.body, *root_batch]))
    return Query(root)


def strip_signoffs(query: Query, roles: Iterable[Role]) -> Query:
    """Remove the ``signOff`` statements for ``roles`` from a rewritten query.

    The counterpart of projection-tree pruning: when a role's pattern is
    dropped (the schema-constraint pass proves it unmatchable), the role is
    never assigned, so its removal statements must go too or strict role
    accounting would observe removals of never-assigned roles.
    """
    removed = set(roles)
    if not removed:
        return query

    def transform(node: Expr) -> Expr:
        if isinstance(node, SignOff) and node.role in removed:
            return Empty()
        return node

    root = map_expr(query.root, transform)
    assert isinstance(root, Element)
    return Query(root)
