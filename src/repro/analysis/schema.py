"""First-class schema abstraction for schema-aware static analysis.

The paper's buffer minimization is purely query-driven; the FluX line of
work (Koch et al., "Schema-based Scheduling of Event Processors",
cs/0406016) shows that DTD knowledge lets a compiler *prove* occurrence
facts — "this element occurs at most once under that parent", "no more
``name`` children can open once ``payment`` has" — and convert buffered
paths into direct-output paths.  :class:`Schema` is the object those
proofs are made against.

A schema is a set of simplified regular content models: each element maps
to an *ordered* list of :class:`ChildSpec` entries ``(tag, min, max)``
with ``max = None`` meaning unbounded.  This is exactly the fragment the
adapted XMark DTD uses (attributes already converted to subelements, cf.
Section 7 of the paper), and it is closed under the DTD subset rendered
by :meth:`Schema.to_dtd`: ``<!ELEMENT parent (a, b?, c*, d+)>`` plus
``<!ELEMENT leaf (#PCDATA)>`` lines round-trip losslessly through
:meth:`Schema.from_dtd_text`.

Two wrinkles inherited from the attribute conversion:

* *reference positions*: ``<buyer person="p0">`` becomes
  ``<buyer><person>p0</person></buyer>``, where ``person`` is a PCDATA
  leaf even though ``person`` *records* elsewhere have a content model.
  ``reference_positions`` lists such ``(parent, child)`` pairs; they are
  serialized into the DTD text as a structured comment so the round trip
  stays exact.
* element content is element-only: a modeled parent carries no character
  data (the generator emits none and the validator enforces none), which
  is what makes ``text()`` steps under modeled parents provably empty.

The derived facts (:meth:`allows`, :meth:`max_occurs`, :meth:`closers`,
:meth:`reachable_from`, …) are cached on first use; instances are
immutable and picklable (they ride to pool worker processes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "ChildSpec",
    "Schema",
    "SchemaViolation",
    "load_dtd",
]


class SchemaViolation(ValueError):
    """A document (or DTD text) does not conform to the schema."""


@dataclass(frozen=True)
class ChildSpec:
    """One entry of a content model: ``tag`` with occurrence bounds."""

    tag: str
    min_occurs: int = 1
    max_occurs: int | None = 1  # None = unbounded

    def __post_init__(self) -> None:
        if self.min_occurs < 0:
            raise ValueError(f"min_occurs must be >= 0, got {self.min_occurs}")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise ValueError(
                f"max_occurs {self.max_occurs} < min_occurs {self.min_occurs}"
            )

    @property
    def suffix(self) -> str:
        """The DTD occurrence indicator: ``""``, ``?``, ``*`` or ``+``."""
        if self.max_occurs is None:
            return "*" if self.min_occurs == 0 else "+"
        if self.min_occurs == 0:
            return "?"
        return ""


#: Parses one element declaration of the supported DTD subset.
_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.-]+)\s+\(([^)]*)\)\s*>")
#: The structured comment that preserves reference positions (see module
#: docstring); written by to_dtd, read back by from_dtd_text.
_REFERENCES_RE = re.compile(r"<!--\s*reference positions:\s*([^>]*?)\s*-->")
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)


@dataclass(frozen=True)
class Schema:
    """Content models plus reference positions, with derived facts cached.

    ``models`` maps each non-leaf element tag to its ordered child specs;
    tags that appear only as children are PCDATA leaves.  Construct via
    :meth:`from_content_models` or :meth:`from_dtd_text` rather than
    directly — they normalize the inputs.
    """

    models: Mapping[str, tuple[ChildSpec, ...]] = field(default_factory=dict)
    reference_positions: frozenset[tuple[str, str]] = frozenset()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_content_models(
        cls,
        models: Mapping[str, Iterable[tuple[str, int, int | None] | ChildSpec]],
        reference_positions: Iterable[tuple[str, str]] = (),
    ) -> "Schema":
        """Build a schema from ``{parent: [(tag, min, max), ...]}`` tables."""
        normalized: dict[str, tuple[ChildSpec, ...]] = {}
        for parent, specs in models.items():
            entries = tuple(
                spec
                if isinstance(spec, ChildSpec)
                else ChildSpec(spec[0], spec[1], spec[2])
                for spec in specs
            )
            seen: set[str] = set()
            for entry in entries:
                if entry.tag in seen:
                    raise SchemaViolation(
                        f"content model of <{parent}> lists <{entry.tag}> twice"
                    )
                seen.add(entry.tag)
            normalized[parent] = entries
        return cls(normalized, frozenset(reference_positions))

    @classmethod
    def from_dtd_text(cls, text: str) -> "Schema":
        """Parse the DTD subset emitted by :meth:`to_dtd`.

        Supported: ``<!ELEMENT name (a, b?, c*, d+)>`` element-content
        declarations, ``<!ELEMENT name (#PCDATA)>`` leaves, comments, and
        the structured ``reference positions`` comment.  Anything else
        (mixed content, alternation, nested groups, attlists) raises
        :class:`SchemaViolation` — the analysis must not silently accept
        a schema it cannot reason about.
        """
        references: set[tuple[str, str]] = set()
        for match in _REFERENCES_RE.finditer(text):
            for pair in match.group(1).split():
                parent, _, child = pair.partition("/")
                if not child:
                    raise SchemaViolation(
                        f"malformed reference position {pair!r} (want parent/child)"
                    )
                references.add((parent, child))
        stripped = _COMMENT_RE.sub("", text)
        models: dict[str, tuple[ChildSpec, ...]] = {}
        declared_leaves: set[str] = set()
        consumed = 0
        for match in _ELEMENT_RE.finditer(stripped):
            consumed += 1
            parent, content = match.group(1), match.group(2).strip()
            if parent in models or parent in declared_leaves:
                raise SchemaViolation(f"duplicate declaration of <{parent}>")
            if content == "#PCDATA":
                declared_leaves.add(parent)
                continue
            specs: list[ChildSpec] = []
            for part in content.split(","):
                part = part.strip()
                if not part:
                    raise SchemaViolation(
                        f"empty particle in content model of <{parent}>"
                    )
                if part[-1] in "?*+":
                    tag, suffix = part[:-1].strip(), part[-1]
                else:
                    tag, suffix = part, ""
                if not re.fullmatch(r"[\w.-]+", tag) or tag == "#PCDATA":
                    raise SchemaViolation(
                        f"unsupported particle {part!r} in <{parent}> (the "
                        "analysis handles sequences of optionally-repeated "
                        "tags only)"
                    )
                bounds = {"": (1, 1), "?": (0, 1), "*": (0, None), "+": (1, None)}
                lo, hi = bounds[suffix]
                specs.append(ChildSpec(tag, lo, hi))
            models[parent] = tuple(specs)
        if not consumed:
            raise SchemaViolation("no <!ELEMENT ...> declarations found")
        schema = cls.from_content_models(models, references)
        # Leaves are implied by absence; declared leaves must not clash.
        for leaf in declared_leaves:
            if leaf in models:
                raise SchemaViolation(f"<{leaf}> declared both leaf and parent")
        return schema

    def to_dtd(self) -> str:
        """Render the schema as DTD text (lossless round trip).

        Matches the layout of the adapted XMark DTD the benchmarks ship:
        element-content declarations in model order, PCDATA leaves sorted
        at the end, and reference positions preserved in a structured
        comment.
        """
        lines = ["<!-- XMark DTD, adapted: attributes are subelements -->"]
        if self.reference_positions:
            rendered = " ".join(
                f"{parent}/{child}"
                for parent, child in sorted(self.reference_positions)
            )
            lines.append(f"<!-- reference positions: {rendered} -->")
        for parent, specs in self.models.items():
            parts = ", ".join(spec.tag + spec.suffix for spec in specs)
            lines.append(f"<!ELEMENT {parent} ({parts})>")
        for leaf in sorted(self.leaves):
            lines.append(f"<!ELEMENT {leaf} (#PCDATA)>")
        return "\n".join(lines) + "\n"

    # -- basic facts ----------------------------------------------------

    @cached_property
    def tags(self) -> frozenset[str]:
        """All element tags that can occur in a conforming document."""
        tags = set(self.models)
        for specs in self.models.values():
            tags.update(spec.tag for spec in specs)
        return frozenset(tags)

    @cached_property
    def leaves(self) -> frozenset[str]:
        """Tags with no content model: PCDATA-only elements."""
        return frozenset(tag for tag in self.tags if tag not in self.models)

    @cached_property
    def roots(self) -> frozenset[str]:
        """Tags that never occur as a child: document-root candidates.

        Empty for a fully recursive schema, in which case callers must
        treat every tag as a possible root (the conservative reading).
        """
        children = {spec.tag for specs in self.models.values() for spec in specs}
        return frozenset(self.tags - children)

    def children_of(self, parent: str) -> tuple[ChildSpec, ...]:
        """The content model of ``parent`` (empty for leaves/unknown)."""
        return self.models.get(parent, ())

    @cached_property
    def _spec_index(self) -> dict[tuple[str, str], tuple[int, ChildSpec]]:
        index: dict[tuple[str, str], tuple[int, ChildSpec]] = {}
        for parent, specs in self.models.items():
            for position, spec in enumerate(specs):
                index[(parent, spec.tag)] = (position, spec)
        return index

    def allows(self, parent: str, child: str) -> bool:
        """Can ``child`` occur as a direct element child of ``parent``?"""
        return (parent, child) in self._spec_index

    def is_reference(self, parent: str, child: str) -> bool:
        """Is ``child`` a PCDATA reference leaf *at this position*?"""
        return (parent, child) in self.reference_positions

    def max_occurs(self, parent: str, child: str) -> int | None:
        """Occurrence ceiling of ``child`` under ``parent`` (0 = never)."""
        entry = self._spec_index.get((parent, child))
        if entry is None:
            return 0
        return entry[1].max_occurs

    def at_most_once(self, parent: str, child: str) -> bool:
        """Does the schema prove ``child`` occurs <= 1 time under ``parent``?"""
        return self.max_occurs(parent, child) in (0, 1)

    def closers(self, parent: str, child: str) -> frozenset[str]:
        """Sibling tags whose opening proves no further ``child`` can open.

        The content model is an ordered sequence, so once a sibling that
        sorts strictly *after* ``child`` has opened under ``parent``, the
        schema forbids any later ``child`` occurrence — the fact behind
        FluX-style "release at the last schema-possible occurrence".
        Empty when ``child`` is not in the model (no fact available).
        """
        entry = self._spec_index.get((parent, child))
        if entry is None:
            return frozenset()
        position = entry[0]
        specs = self.models[parent]
        return frozenset(spec.tag for spec in specs[position + 1 :])

    @cached_property
    def text_bearing(self) -> frozenset[str]:
        """Tags that can carry character data at *some* position.

        Leaves always can; a modeled tag can when some reference position
        turns an occurrence of it into a PCDATA leaf (``seller/person``).
        The union over positions is deliberately conservative: proofs of
        *impossibility* (pruning a ``text()`` step) must over-approximate
        what a conforming document may contain.
        """
        return self.leaves | frozenset(
            child for _parent, child in self.reference_positions
        )

    def reachable_from(self, tag: str) -> frozenset[str]:
        """Element tags reachable as proper descendants of ``tag``.

        Deliberately over-approximate: reference-position children are
        expanded through their record-form content model even though a
        conforming document keeps them as PCDATA leaves there.  Every
        consumer of this fact proves an impossibility (a path cannot
        match; a binding cannot nest), so extra edges only make the
        analysis more conservative, never unsound.
        """
        return self._reachability.get(tag, frozenset())

    @cached_property
    def _reachability(self) -> dict[str, frozenset[str]]:
        resolved: dict[str, frozenset[str]] = {}
        for start in self.tags:
            seen: set[str] = set()
            stack = [spec.tag for spec in self.children_of(start)]
            while stack:
                tag = stack.pop()
                if tag in seen:
                    continue
                seen.add(tag)
                stack.extend(
                    spec.tag
                    for spec in self.children_of(tag)
                    if spec.tag not in seen
                )
            resolved[start] = frozenset(seen)
        return resolved

    # -- validation -----------------------------------------------------

    def validate_children(
        self, parent: str, children: list[str], *, as_reference: bool = False
    ) -> None:
        """Check a child-tag sequence against ``parent``'s content model.

        Raises :class:`SchemaViolation` on the first mismatch.  Leaves
        (and reference-position occurrences) accept no element children.
        """
        if as_reference or parent not in self.models:
            if children:
                raise SchemaViolation(
                    f"leaf element <{parent}> must not have element children"
                )
            return
        position = 0
        for spec in self.models[parent]:
            count = 0
            while position < len(children) and children[position] == spec.tag:
                position += 1
                count += 1
            if count < spec.min_occurs or (
                spec.max_occurs is not None and count > spec.max_occurs
            ):
                raise SchemaViolation(
                    f"<{parent}> has children {children} violating its "
                    "content model"
                )
        if position != len(children):
            raise SchemaViolation(
                f"<{parent}> has children {children} violating its "
                "content model"
            )

    def validate_document(self, document) -> int:
        """Validate a parsed or textual document; returns elements checked.

        Accepts document text or a
        :class:`~repro.xmlio.tree.DocumentNode`; raises
        :class:`SchemaViolation` on the first offending element.
        """
        # Local import: repro.xmlio depends on nothing in repro.analysis,
        # and keeping the analysis layer import-light keeps compile-only
        # users (e.g. pool worker bootstrap) fast.
        from repro.xmlio.tree import DocumentNode, ElementNode, parse_tree

        tree = (
            document
            if isinstance(document, DocumentNode)
            else parse_tree(document)
        )
        known = self.tags
        checked = 0

        def visit(node: ElementNode, is_reference: bool) -> None:
            nonlocal checked
            if node.tag not in known:
                raise SchemaViolation(f"unknown element <{node.tag}>")
            child_tags = [
                child.tag
                for child in node.children
                if isinstance(child, ElementNode)
            ]
            self.validate_children(
                node.tag, child_tags, as_reference=is_reference
            )
            checked += 1
            for child in node.children:
                if isinstance(child, ElementNode):
                    visit(child, self.is_reference(node.tag, child.tag))

        root = tree.root_element
        if root is not None:
            visit(root, False)
        return checked


def load_dtd(source: str | Path) -> Schema:
    """Load a :class:`Schema` from a DTD file path.

    The CLI's ``--schema PATH`` lands here; pass DTD *text* directly to
    :meth:`Schema.from_dtd_text` instead (the serve protocol does, since
    frames carry text, not filenames).
    """
    return Schema.from_dtd_text(Path(source).read_text(encoding="utf-8"))
