"""Stream preprojection: projection-tree matcher and preprojector."""

from repro.stream.matcher import MatchFrame, StreamMatcher, Transition
from repro.stream.preprojector import StreamPreprojector

__all__ = ["MatchFrame", "StreamMatcher", "Transition", "StreamPreprojector"]
