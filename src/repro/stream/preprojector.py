"""The stream preprojector (Figure 11, right component).

Pulls tokens from the XML tokenizer one at a time, matches them against the
projection tree, and copies relevant tokens into the buffer together with
their roles.  In contrast to projection as implemented in Galax, where the
whole document is projected before evaluation starts, the buffer is filled
incrementally as the evaluator demands input (Section 1).

Besides matching, the preprojector applies *pending cancellations*: role
instances whose signOff already executed (while the region was unfinished)
are subtracted at arrival, so post-scope arrivals do not retain roles
forever (see docs/ARCHITECTURE.md).

Since the multi-query engine, the per-query state machine lives in
:class:`ProjectionLane` — the match-frame stack, open-element bookkeeping,
buffering decisions and cancellation handling for *one* query.
:class:`StreamPreprojector` is the N=1 composition: one token pump driving
one lane.  The shared-stream dispatcher
(:class:`~repro.stream.shared.SharedPreprojector`) drives N lanes from the
same pump, which is what makes single-query evaluation literally the N=1
case of the shared path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.analysis.projection_tree import ProjectionTree
from repro.analysis.roles import Role
from repro.buffer.buffer import BufferTree, CancelEntry
from repro.buffer.node import BufferNode
from repro.stream.matcher import MatchFrame, StreamMatcher, Transition
from repro.xmlio.tokens import EndTag, StartTag, Text, Token
from repro.xquery.paths import Axis, Path, Step

__all__ = ["ProjectionLane", "StreamPreprojector"]


@dataclass
class _OpenElement:
    """Bookkeeping for one open input element."""

    tag: str  # "" for text pseudo entries (never stacked)
    frame: MatchFrame
    buffer_node: BufferNode | None  # None when the token was not preserved
    attach: BufferNode  # nearest buffered ancestor


class ProjectionLane:
    """Projection of one query's view of a token stream into its buffer.

    A lane owns all per-query dynamic state — the matcher frame stack, the
    open-element stack, consumed-``[1]`` counts and pending-cancellation
    application — but *not* the token source: the caller feeds it events
    through :meth:`open`, :meth:`close`, :meth:`text` and
    :meth:`finish_stream`.  One lane behind one tokenizer is the classic
    single-query preprojector; N lanes behind one tokenizer is the shared
    multi-query pass.
    """

    def __init__(
        self,
        tree: ProjectionTree,
        buffer: BufferTree,
        *,
        aggregate_roles: bool = True,
        matcher: StreamMatcher | None = None,
        accumulators: "object | None" = None,
    ) -> None:
        self.buffer = buffer
        # Optional aggregate accumulator automaton
        # (repro.engine.relops.aggregates.AccumulatorRuntime): fed every
        # event this lane observes, so count/sum/avg states are complete
        # by the time a binding's subtree is finished.
        self.accumulators = accumulators
        # A caller may pass a warm matcher (compile-once/run-many sessions
        # do): its lazily built transition table carries over, so repeated
        # documents replay memoized transitions from the first token.
        if matcher is not None:
            if matcher.tree is not tree:
                raise ValueError(
                    "matcher was built for a different projection tree"
                )
            if matcher.aggregate != aggregate_roles:
                raise ValueError(
                    "matcher was built with aggregate_roles="
                    f"{matcher.aggregate}, preprojector asked for "
                    f"{aggregate_roles}"
                )
            self.matcher = matcher
        else:
            self.matcher = StreamMatcher(tree, aggregate_roles=aggregate_roles)
        self.exhausted = False
        root_frame = self.matcher.initial_frame()
        self._stack: list[_OpenElement] = [
            _OpenElement("", root_frame, buffer.document, buffer.document)
        ]
        # The matcher sees the frame stack; keep it materialized instead of
        # rebuilding a list per token, and count frames holding consumed
        # [1]-steps so the DFA fast path needs no per-token stack scan.
        self._frames: list[MatchFrame] = [root_frame]
        self._consumed_frames = 0

    @property
    def depth(self) -> int:
        return len(self._stack) - 1

    # ------------------------------------------------------------------
    # stream events
    # ------------------------------------------------------------------

    def open(self, tag: str) -> None:
        """An opening tag was read for this lane."""
        self.buffer.stats.tokens_read += 1
        frames = self._frames
        transition = self.matcher.match_token(
            frames, tag=tag, is_text=False, any_consumed=self._consumed_frames > 0
        )
        self._consumed_frames += self.matcher.apply_consumptions(frames, transition)
        normal, aggregate, cancelled = self._apply_cancellations(
            transition, tag=tag, is_text=False
        )
        parent_entry = self._stack[-1]
        node = self._maybe_buffer(
            transition,
            normal,
            aggregate,
            parent_entry,
            lambda attach: self.buffer.new_element(attach, tag),
        )
        if transition.consumed_first:
            self._record_witnesses(transition, node)
        frame = self.matcher.frame_for(transition)
        frames.append(frame)
        self._stack.append(
            _OpenElement(
                tag,
                frame,
                node,
                node if node is not None else parent_entry.attach,
            )
        )
        if self.accumulators is not None:
            self.accumulators.on_open(tag, transition.matches, node)

    def close(self) -> None:
        """The closing tag of the lane's deepest open element was read."""
        self.buffer.stats.tokens_read += 1
        entry = self._stack.pop()
        frame = self._frames.pop()
        if frame.consumed:
            self._consumed_frames -= 1
        if self.accumulators is not None:
            self.accumulators.on_close()
        if entry.buffer_node is not None:
            self.buffer.finish(entry.buffer_node)

    def text(self, token: "Text | str") -> None:
        """A text token (or its content) was read for this lane.

        Passing the token itself keeps decode-on-demand intact: a
        :class:`~repro.xmlio.tokens.LazyText`'s UTF-8 decode runs inside
        the buffer factory below, i.e. only when the projection actually
        preserves the node.  Text the matcher discards — and every node in
        a parked lane's withheld subtree — stays an undecoded byte span.
        """
        self.buffer.stats.tokens_read += 1
        frames = self._frames
        transition = self.matcher.match_token(
            frames, tag=None, is_text=True, any_consumed=self._consumed_frames > 0
        )
        self._consumed_frames += self.matcher.apply_consumptions(frames, transition)
        normal, aggregate, cancelled = self._apply_cancellations(
            transition, tag=None, is_text=True
        )
        parent_entry = self._stack[-1]
        node = self._maybe_buffer(
            transition,
            normal,
            aggregate,
            parent_entry,
            lambda attach: self.buffer.new_text(
                attach,
                token.content if isinstance(token, Text) else token,
            ),
        )
        if transition.consumed_first:
            self._record_witnesses(transition, node)
        if self.accumulators is not None:
            # The runtime decodes lazily: counting needs no content, only
            # value credits and open captures materialize the text.
            self.accumulators.on_text(token)

    def finish_stream(self) -> None:
        """The shared input ended: the lane's document node is finished."""
        self.exhausted = True
        self.buffer.finish_document()

    # ------------------------------------------------------------------
    # routing support (the shared dispatcher's skip decision)
    # ------------------------------------------------------------------

    def subtree_dead(self) -> bool:
        """Can the subtree of the just-opened element be withheld entirely?

        True when the element was not preserved and its frame carries no
        exact or cumulative matches: every per-query effect — child/
        descendant contributions, role assignment, the promotion guard,
        aggregate coverage — derives from those multisets, so nothing in
        the subtree can ever concern this lane.  (Not-preserved implies
        not covered by an aggregate scope, which is what licenses dropping
        the descendants too.)  The caller must then also withhold the
        matching close event *except* the one that pops this element.
        """
        entry = self._stack[-1]
        if entry.buffer_node is not None:
            return False
        frame = entry.frame
        return not frame.matches and not frame.cumulative

    # ------------------------------------------------------------------

    def _maybe_buffer(
        self,
        transition: Transition,
        normal: dict[Role, int],
        aggregate: dict[Role, int],
        parent_entry: _OpenElement,
        factory,
    ) -> BufferNode | None:
        preserve = (
            bool(normal)
            or bool(aggregate)
            or transition.structural
            or self._covered_by_aggregate(parent_entry.attach)
        )
        if not preserve:
            self.buffer.stats.nodes_dropped += 1
            return None
        node = factory(parent_entry.attach)
        self.buffer.assign_roles(
            node,
            normal=list(normal.items()),
            aggregate=list(aggregate.items()),
        )
        return node

    def _covered_by_aggregate(self, attach: BufferNode) -> bool:
        node: BufferNode | None = attach
        while node is not None:
            if node.aggregate_roles:
                return True
            node = node.parent
        return False

    def _record_witnesses(
        self, transition: Transition, node: BufferNode | None
    ) -> None:
        """Pin the arriving token as the ``[1]`` witness of its contexts.

        ``transition.consumed_first`` lists the (stack depth, step node)
        contexts whose first witness this arrival is.  The evaluator and
        the signOff machinery must navigate ``[1]`` steps through this
        record rather than taking the first *buffered* match: once the true
        witness is garbage-collected, the first buffered match is a later
        sibling the stream already disqualified, and stepping through it
        would read (or cancel) role instances that belong to a different
        binding.
        """
        for depth, w in transition.consumed_first:
            context = self._stack[depth].buffer_node
            if context is None:
                continue
            table = context.witnesses
            if table is None:
                table = context.witnesses = {}
            if w.step not in table:
                table[w.step] = (node, node.seq if node is not None else -1)

    # ------------------------------------------------------------------
    # pending cancellations
    # ------------------------------------------------------------------

    def _apply_cancellations(
        self, transition: Transition, *, tag: str | None, is_text: bool
    ) -> tuple[dict[Role, int], dict[Role, int], int]:
        """Subtract already-signed-off role instances from fresh assignments."""
        normal = dict(transition.normal_roles)
        aggregate = dict(transition.aggregate_roles)
        registry = self.buffer.cancellations
        if not registry:
            return normal, aggregate, 0
        cancelled_total = 0
        for depth, entry in enumerate(self._stack):
            region = entry.buffer_node
            if region is None or region not in registry:
                continue
            # The input tag sequence from (below) the region to this token.
            sequence: list[str | None] = [
                self._stack[i].tag for i in range(depth + 1, len(self._stack))
            ]
            sequence.append(None if is_text else tag)
            nodes: list[BufferNode | None] | None = None
            for cancel in registry[region]:
                target = aggregate if cancel.aggregate else normal
                available = target.get(cancel.role, 0)
                if available <= 0:
                    continue
                if cancel.path[-1].first:
                    embeddings = self._first_witness_cancellations(
                        cancel, transition, depth
                    )
                elif any(step.first for step in cancel.path):
                    if nodes is None:
                        nodes = [
                            self._stack[i].buffer_node
                            for i in range(depth + 1, len(self._stack))
                        ]
                        # The arriving token itself: bound only by the last
                        # step, which is not positional on this branch.
                        nodes.append(None)
                    embeddings = _count_embeddings_first_aware(
                        cancel.path, sequence, nodes, region, is_text
                    )
                else:
                    embeddings = _count_embeddings(cancel.path, sequence, is_text)
                if embeddings <= 0:
                    continue
                amount = min(available, embeddings)
                if amount == available:
                    del target[cancel.role]
                else:
                    target[cancel.role] = available - amount
                cancelled_total += amount
        if cancelled_total:
            self.buffer.stats.on_cancelled(cancelled_total)
        return normal, aggregate, cancelled_total

    def _first_witness_cancellations(
        self, cancel: CancelEntry, transition: Transition, depth: int
    ) -> int:
        """Cancellable instances of a ``[1]``-terminated path at this token.

        The matcher assigns a first-witness role only at the arrival that
        consumes the ``[1]`` for a context frame, so the region's share
        cannot be read off the tag sequence (which is blind to consumption):
        an outer region whose witness was already consumed contributes
        nothing to this arrival, and its pending cancellation must not eat
        instances earned by an inner, still-live binding's fresh context.
        ``transition.consumed_first`` lists exactly the contexts consumed
        *now*; the region's share is the embeddings of the path prefix that
        end at such a context below (or at) the region.
        """
        last = cancel.path[-1]
        prefix = cancel.path[:-1]
        total = 0
        for d, node in transition.consumed_first:
            if node.role is not cancel.role or d < depth:
                continue
            if last.axis is Axis.CHILD and d != len(self._stack) - 1:
                continue
            if not prefix:
                # Single-step path: the context frame is the region itself.
                if d == depth:
                    total += 1
            else:
                sequence: list[str | None] = [
                    self._stack[i].tag for i in range(depth + 1, d + 1)
                ]
                if any(step.first for step in prefix):
                    nodes: list[BufferNode | None] = [
                        self._stack[i].buffer_node
                        for i in range(depth + 1, d + 1)
                    ]
                    total += _count_embeddings_first_aware(
                        prefix,
                        sequence,
                        nodes,
                        self._stack[depth].buffer_node,
                        False,
                    )
                else:
                    total += _count_embeddings(prefix, sequence, False)
        return total


class StreamPreprojector:
    """Incremental projection of a token stream into the buffer.

    The N=1 composition of the shared-stream architecture: one token pump
    (this class) driving one :class:`ProjectionLane`.  All matching,
    buffering and cancellation behaviour lives in the lane; the public
    surface (``pull``, ``run_to_completion``, ``exhausted``, ``depth``,
    ``matcher``, ``buffer``) is unchanged from the single-query engine.
    """

    def __init__(
        self,
        tokens: Iterator[Token],
        tree: ProjectionTree,
        buffer: BufferTree,
        *,
        aggregate_roles: bool = True,
        matcher: StreamMatcher | None = None,
        accumulators: "object | None" = None,
    ) -> None:
        self._tokens = tokens
        self._lane = ProjectionLane(
            tree,
            buffer,
            aggregate_roles=aggregate_roles,
            matcher=matcher,
            accumulators=accumulators,
        )

    @property
    def buffer(self) -> BufferTree:
        return self._lane.buffer

    @property
    def matcher(self) -> StreamMatcher:
        return self._lane.matcher

    @property
    def exhausted(self) -> bool:
        return self._lane.exhausted

    @property
    def depth(self) -> int:
        return self._lane.depth

    # ------------------------------------------------------------------

    def pull(self) -> bool:
        """Process one input token.  Returns False when input is exhausted."""
        lane = self._lane
        if lane.exhausted:
            return False
        token = next(self._tokens, None)
        if token is None:
            lane.finish_stream()
            return False
        if isinstance(token, StartTag):
            lane.open(token.tag)
        elif isinstance(token, EndTag):
            lane.close()
        elif isinstance(token, Text):
            lane.text(token)
        return True

    def run_to_completion(self) -> None:
        """Project the whole input (the Galax-style, non-incremental mode)."""
        while self.pull():
            pass


def _count_embeddings(path: Path, sequence: list[str | None], is_text: bool) -> int:
    """Count embeddings of ``path`` into the tag sequence, the last step
    binding the last element.  ``None`` entries denote text tokens.

    ``[1]`` predicates are treated as unrestricted; over-counting is clamped
    by the caller against the actually assigned instances.
    """
    n_steps, n_seq = len(path), len(sequence)
    if n_steps == 0 or n_seq == 0:
        return 0

    def test_ok(step: Step, index: int) -> bool:
        label = sequence[index]
        if label is None:
            return step.test.matches_text()
        return step.test.matches_element(label)

    from functools import lru_cache

    @lru_cache(maxsize=None)
    def count(i: int, j: int) -> int:
        """Embeddings of path[i:] into sequence[j:] (last binds last)."""
        if i == n_steps:
            return 1 if j == n_seq else 0
        step = path[i]
        total = 0
        if step.axis is Axis.CHILD:
            if j < n_seq and test_ok(step, j):
                total += count(i + 1, j + 1)
        elif step.axis is Axis.DESCENDANT:
            for k in range(j, n_seq):
                if test_ok(step, k):
                    total += count(i + 1, k + 1)
        else:  # DOS: self or any descendant
            for k in range(j - 1, n_seq):
                if k == j - 1:
                    # self: binds the same node the previous step bound
                    total += count(i + 1, j)
                elif test_ok(step, k):
                    total += count(i + 1, k + 1)
        return total

    return count(0, 0)


def _count_embeddings_first_aware(
    path: Path,
    sequence: list[str | None],
    nodes: list[BufferNode | None],
    region_node: BufferNode | None,
    is_text: bool,
) -> int:
    """Like :func:`_count_embeddings`, but ``[1]`` steps are restricted.

    A ``[1]`` step may only bind the element its context recorded as the
    first witness (``BufferNode.witnesses``).  Counting it as unrestricted
    and clamping — sound for plain and ``[last()]`` steps, whose role
    assignment is equally unrestricted — over-counts here, because the
    clamp pool is shared across bindings: a region whose witness subtree
    is already closed would eat role instances earned by an inner binding
    whose chain is still live.  ``nodes[j]`` is the buffer node behind
    ``sequence[j]`` (None for unpreserved elements and for the arriving
    token, which only the final step can bind).
    """
    n_steps, n_seq = len(path), len(sequence)
    if n_steps == 0 or n_seq == 0:
        return 0

    def test_ok(step: Step, index: int) -> bool:
        label = sequence[index]
        if label is None:
            return step.test.matches_text()
        return step.test.matches_element(label)

    def witness_ok(step: Step, j: int, k: int) -> bool:
        if not step.first:
            return True
        context = region_node if j == 0 else nodes[j - 1]
        elem = nodes[k]
        if context is None or elem is None:
            return False
        table = context.witnesses
        if not table:
            return False
        rec = table.get(step)
        return rec is not None and rec[0] is elem and rec[1] == elem.seq

    from functools import lru_cache

    @lru_cache(maxsize=None)
    def count(i: int, j: int) -> int:
        """Embeddings of path[i:] into sequence[j:] (last binds last)."""
        if i == n_steps:
            return 1 if j == n_seq else 0
        step = path[i]
        total = 0
        if step.axis is Axis.CHILD:
            if j < n_seq and test_ok(step, j) and witness_ok(step, j, j):
                total += count(i + 1, j + 1)
        elif step.axis is Axis.DESCENDANT:
            for k in range(j, n_seq):
                if test_ok(step, k) and witness_ok(step, j, k):
                    total += count(i + 1, k + 1)
        else:  # DOS: self or any descendant (never positional)
            for k in range(j - 1, n_seq):
                if k == j - 1:
                    total += count(i + 1, j)
                elif test_ok(step, k):
                    total += count(i + 1, k + 1)
        return total

    return count(0, 0)
