"""The stream preprojector (Figure 11, right component).

Pulls tokens from the XML tokenizer one at a time, matches them against the
projection tree, and copies relevant tokens into the buffer together with
their roles.  In contrast to projection as implemented in Galax, where the
whole document is projected before evaluation starts, the buffer is filled
incrementally as the evaluator demands input (Section 1).

Besides matching, the preprojector applies *pending cancellations*: role
instances whose signOff already executed (while the region was unfinished)
are subtracted at arrival, so post-scope arrivals do not retain roles
forever (see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.analysis.projection_tree import ProjectionTree
from repro.analysis.roles import Role
from repro.buffer.buffer import BufferTree
from repro.buffer.node import BufferNode
from repro.stream.matcher import MatchFrame, StreamMatcher, Transition
from repro.xmlio.tokens import EndTag, StartTag, Text, Token
from repro.xquery.paths import Axis, Path, Step

__all__ = ["StreamPreprojector"]


@dataclass
class _OpenElement:
    """Bookkeeping for one open input element."""

    tag: str  # "" for text pseudo entries (never stacked)
    frame: MatchFrame
    buffer_node: BufferNode | None  # None when the token was not preserved
    attach: BufferNode  # nearest buffered ancestor


class StreamPreprojector:
    """Incremental projection of a token stream into the buffer."""

    def __init__(
        self,
        tokens: Iterator[Token],
        tree: ProjectionTree,
        buffer: BufferTree,
        *,
        aggregate_roles: bool = True,
        matcher: StreamMatcher | None = None,
    ) -> None:
        self._tokens = tokens
        self.buffer = buffer
        # A caller may pass a warm matcher (compile-once/run-many sessions
        # do): its lazily built transition table carries over, so repeated
        # documents replay memoized transitions from the first token.
        if matcher is not None:
            if matcher.tree is not tree:
                raise ValueError(
                    "matcher was built for a different projection tree"
                )
            if matcher.aggregate != aggregate_roles:
                raise ValueError(
                    "matcher was built with aggregate_roles="
                    f"{matcher.aggregate}, preprojector asked for "
                    f"{aggregate_roles}"
                )
            self.matcher = matcher
        else:
            self.matcher = StreamMatcher(tree, aggregate_roles=aggregate_roles)
        self.exhausted = False
        root_frame = self.matcher.initial_frame()
        self._stack: list[_OpenElement] = [
            _OpenElement("", root_frame, buffer.document, buffer.document)
        ]
        # The matcher sees the frame stack; keep it materialized instead of
        # rebuilding a list per token, and count frames holding consumed
        # [1]-steps so the DFA fast path needs no per-token stack scan.
        self._frames: list[MatchFrame] = [root_frame]
        self._consumed_frames = 0

    # ------------------------------------------------------------------

    def pull(self) -> bool:
        """Process one input token.  Returns False when input is exhausted."""
        if self.exhausted:
            return False
        token = next(self._tokens, None)
        if token is None:
            self.exhausted = True
            self.buffer.finish_document()
            return False
        self.buffer.stats.tokens_read += 1
        if isinstance(token, StartTag):
            self._open(token.tag)
        elif isinstance(token, EndTag):
            self._close()
        elif isinstance(token, Text):
            self._text(token.content)
        return True

    def run_to_completion(self) -> None:
        """Project the whole input (the Galax-style, non-incremental mode)."""
        while self.pull():
            pass

    @property
    def depth(self) -> int:
        return len(self._stack) - 1

    # ------------------------------------------------------------------

    def _open(self, tag: str) -> None:
        frames = self._frames
        transition = self.matcher.match_token(
            frames, tag=tag, is_text=False, any_consumed=self._consumed_frames > 0
        )
        self._consumed_frames += self.matcher.apply_consumptions(frames, transition)
        normal, aggregate, cancelled = self._apply_cancellations(
            transition, tag=tag, is_text=False
        )
        parent_entry = self._stack[-1]
        node = self._maybe_buffer(
            transition,
            normal,
            aggregate,
            parent_entry,
            lambda attach: self.buffer.new_element(attach, tag),
        )
        frame = self.matcher.frame_for(transition)
        frames.append(frame)
        self._stack.append(
            _OpenElement(
                tag,
                frame,
                node,
                node if node is not None else parent_entry.attach,
            )
        )

    def _close(self) -> None:
        entry = self._stack.pop()
        frame = self._frames.pop()
        if frame.consumed:
            self._consumed_frames -= 1
        if entry.buffer_node is not None:
            self.buffer.finish(entry.buffer_node)

    def _text(self, content: str) -> None:
        frames = self._frames
        transition = self.matcher.match_token(
            frames, tag=None, is_text=True, any_consumed=self._consumed_frames > 0
        )
        self._consumed_frames += self.matcher.apply_consumptions(frames, transition)
        normal, aggregate, cancelled = self._apply_cancellations(
            transition, tag=None, is_text=True
        )
        parent_entry = self._stack[-1]
        self._maybe_buffer(
            transition,
            normal,
            aggregate,
            parent_entry,
            lambda attach: self.buffer.new_text(attach, content),
        )

    # ------------------------------------------------------------------

    def _maybe_buffer(
        self,
        transition: Transition,
        normal: dict[Role, int],
        aggregate: dict[Role, int],
        parent_entry: _OpenElement,
        factory,
    ) -> BufferNode | None:
        preserve = (
            bool(normal)
            or bool(aggregate)
            or transition.structural
            or self._covered_by_aggregate(parent_entry.attach)
        )
        if not preserve:
            self.buffer.stats.nodes_dropped += 1
            return None
        node = factory(parent_entry.attach)
        self.buffer.assign_roles(
            node,
            normal=list(normal.items()),
            aggregate=list(aggregate.items()),
        )
        return node

    def _covered_by_aggregate(self, attach: BufferNode) -> bool:
        node: BufferNode | None = attach
        while node is not None:
            if node.aggregate_roles:
                return True
            node = node.parent
        return False

    # ------------------------------------------------------------------
    # pending cancellations
    # ------------------------------------------------------------------

    def _apply_cancellations(
        self, transition: Transition, *, tag: str | None, is_text: bool
    ) -> tuple[dict[Role, int], dict[Role, int], int]:
        """Subtract already-signed-off role instances from fresh assignments."""
        normal = dict(transition.normal_roles)
        aggregate = dict(transition.aggregate_roles)
        registry = self.buffer.cancellations
        if not registry:
            return normal, aggregate, 0
        cancelled_total = 0
        for depth, entry in enumerate(self._stack):
            region = entry.buffer_node
            if region is None or region not in registry:
                continue
            # The input tag sequence from (below) the region to this token.
            sequence: list[str | None] = [
                self._stack[i].tag for i in range(depth + 1, len(self._stack))
            ]
            sequence.append(None if is_text else tag)
            for cancel in registry[region]:
                target = aggregate if cancel.aggregate else normal
                available = target.get(cancel.role, 0)
                if available <= 0:
                    continue
                embeddings = _count_embeddings(cancel.path, sequence, is_text)
                if embeddings <= 0:
                    continue
                amount = min(available, embeddings)
                if amount == available:
                    del target[cancel.role]
                else:
                    target[cancel.role] = available - amount
                cancelled_total += amount
        if cancelled_total:
            self.buffer.stats.on_cancelled(cancelled_total)
        return normal, aggregate, cancelled_total


def _count_embeddings(path: Path, sequence: list[str | None], is_text: bool) -> int:
    """Count embeddings of ``path`` into the tag sequence, the last step
    binding the last element.  ``None`` entries denote text tokens.

    ``[1]`` predicates are treated as unrestricted; over-counting is clamped
    by the caller against the actually assigned instances.
    """
    n_steps, n_seq = len(path), len(sequence)
    if n_steps == 0 or n_seq == 0:
        return 0

    def test_ok(step: Step, index: int) -> bool:
        label = sequence[index]
        if label is None:
            return step.test.matches_text()
        return step.test.matches_element(label)

    from functools import lru_cache

    @lru_cache(maxsize=None)
    def count(i: int, j: int) -> int:
        """Embeddings of path[i:] into sequence[j:] (last binds last)."""
        if i == n_steps:
            return 1 if j == n_seq else 0
        step = path[i]
        total = 0
        if step.axis is Axis.CHILD:
            if j < n_seq and test_ok(step, j):
                total += count(i + 1, j + 1)
        elif step.axis is Axis.DESCENDANT:
            for k in range(j, n_seq):
                if test_ok(step, k):
                    total += count(i + 1, k + 1)
        else:  # DOS: self or any descendant
            for k in range(j - 1, n_seq):
                if k == j - 1:
                    # self: binds the same node the previous step bound
                    total += count(i + 1, j)
                elif test_ok(step, k):
                    total += count(i + 1, k + 1)
        return total

    return count(0, 0)
