"""The shared-stream dispatcher: one token pass feeding N query lanes.

Where :class:`~repro.stream.preprojector.StreamPreprojector` pumps one
tokenizer into one :class:`~repro.stream.preprojector.ProjectionLane`,
:class:`SharedPreprojector` pumps one tokenizer into N lanes — the
runtime half of the multi-query engine (:mod:`repro.engine.multi`).  The
document is tokenized exactly once (``tokens_read`` counts the single
scan, the invariant the benchmark gate asserts); each surviving token is
routed to the subset of lanes that still care about it.

Routing maintains the *live bitmask* the union projection tree
(:mod:`repro.analysis.union_tree`) describes statically, as three
disjoint lane sets:

* **active** lanes receive every token;
* **parked** lanes declared the current subtree dead
  (:meth:`ProjectionLane.subtree_dead`: the element was not preserved and
  its frame carries no matches — nothing below can ever concern the
  query).  A parked lane is withheld the whole subtree except the closing
  tag of the element it parked at, which pops its stack and reactivates
  it.  Parks are subtree-shaped, so the park registry is a stack whose
  depths strictly increase;
* **retired** lanes finished their evaluation — every signOff executed —
  and receive nothing further, not even stream-end bookkeeping, because
  their buffers have already been released to their owners.

This is the merged-signoff release rule in dynamic form: a document
region stops being scanned on behalf of a query exactly when that query
has either proven the region irrelevant (park) or signed off everything
it held (retire); the region leaves the *shared* pass when every
interested query has done one or the other.

The per-lane ``buffer.stats.tokens_read`` counts only the tokens actually
dispatched to that lane, so ``RunResult.stats.tokens_read`` reports each
query's routed share of the single scan — the routing savings are the
difference to ``tokens_read * N``.
"""

from __future__ import annotations

from typing import Iterator

from repro.stream.preprojector import ProjectionLane
from repro.xmlio.tokens import EndTag, StartTag, Text, Token

__all__ = ["LaneView", "SharedPreprojector"]


class SharedPreprojector:
    """One tokenizer scan dispatched to N projection lanes."""

    def __init__(self, tokens: Iterator[Token], lanes: list[ProjectionLane]) -> None:
        if not lanes:
            raise ValueError("SharedPreprojector needs at least one lane")
        self._tokens = tokens
        self.lanes = list(lanes)
        #: Tokens read from the shared stream — the single-scan count; the
        #: whole point of the subsystem is that this stays one document
        #: scan however many queries run.
        self.tokens_read = 0
        self.exhausted = False
        self._depth = 0
        self._active: list[int] = list(range(len(lanes)))
        # Stack of (depth, [lane indices]) parks; depths strictly increase,
        # so the closing tag at the top entry's depth is the reactivation
        # point for exactly those lanes.
        self._parked: list[tuple[int, list[int]]] = []
        self._retired: set[int] = set()

    # -- routing telemetry ----------------------------------------------

    @property
    def active_mask(self) -> int:
        """The live bitmask: queries currently receiving tokens."""
        mask = 0
        for index in self._active:
            mask |= 1 << index
        return mask

    @property
    def parked_count(self) -> int:
        return sum(len(indices) for _depth, indices in self._parked)

    # -- lane lifecycle --------------------------------------------------

    def retire(self, index: int) -> None:
        """Stop routing to lane ``index`` forever (its run completed).

        A retired lane's buffer belongs to its owner again (it may already
        be recycled into another run), so the dispatcher must never touch
        the lane after this — including the stream-end bookkeeping.
        """
        self._retired.add(index)
        try:
            self._active.remove(index)
        except ValueError:
            pass  # parked (or already retired): the park pop skips it

    def view(self, index: int) -> "LaneView":
        """The per-query facade evaluators drive their demand through."""
        return LaneView(self, self.lanes[index])

    # -- the shared pump -------------------------------------------------

    def pull(self) -> bool:
        """Read one token from the shared stream and route it.

        Returns False when the input is exhausted, after marking every
        non-retired lane's stream finished.
        """
        if self.exhausted:
            return False
        token = next(self._tokens, None)
        if token is None:
            self.exhausted = True
            for index, lane in enumerate(self.lanes):
                if index not in self._retired:
                    lane.finish_stream()
            return False
        self.tokens_read += 1
        lanes = self.lanes
        active = self._active
        if isinstance(token, StartTag):
            self._depth += 1
            tag = token.tag
            newly_parked: list[int] | None = None
            for index in active:
                lane = lanes[index]
                lane.open(tag)
                if lane.subtree_dead():
                    if newly_parked is None:
                        newly_parked = []
                    newly_parked.append(index)
            if newly_parked is not None:
                for index in newly_parked:
                    active.remove(index)
                self._parked.append((self._depth, newly_parked))
        elif isinstance(token, EndTag):
            for index in active:
                lanes[index].close()
            if self._parked and self._parked[-1][0] == self._depth:
                _depth, indices = self._parked.pop()
                for index in indices:
                    if index not in self._retired:
                        # Pop the element the lane parked at; the subtree
                        # between open and close was withheld entirely.
                        lanes[index].close()
                        active.append(index)
            self._depth -= 1
        elif isinstance(token, Text):
            # Hand lanes the token, not ``token.content``: decoding a
            # LazyText here would charge every skipped subtree for a str
            # conversion its lanes never asked for.
            for index in active:
                lanes[index].text(token)
        return True

    def run_to_completion(self) -> None:
        """Drain the shared stream (all lanes projected in one scan)."""
        while self.pull():
            pass


class LaneView:
    """One query's demand-driven view of the shared pass.

    Implements the slice of the preprojector interface the evaluator and
    the run machinery use — ``pull()`` and ``exhausted`` — so a per-query
    :class:`~repro.engine.evaluator.Evaluator` drives the *shared* pump
    without knowing other queries exist.  A pull advances the shared
    stream by one token, which is dispatched to every live lane: demand
    from any query fills all queries' buffers.
    """

    __slots__ = ("_shared", "_lane")

    def __init__(self, shared: SharedPreprojector, lane: ProjectionLane) -> None:
        self._shared = shared
        self._lane = lane

    @property
    def buffer(self):
        return self._lane.buffer

    @property
    def exhausted(self) -> bool:
        return self._lane.exhausted

    @property
    def depth(self) -> int:
        return self._lane.depth

    def pull(self) -> bool:
        return self._shared.pull()
