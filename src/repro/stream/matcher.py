"""Projection-tree matching over the input stream (Section 2, Figure 5).

The paper realizes stream preprojection with a lazily constructed DFA whose
states map to multisets of projection tree nodes — multiplicities count the
number of path-step assignments that match (Example 1).  This module
implements that machine literally: every distinct multiset pair
(``matches``, ``cumulative``) is *interned* into a small integer DFA state
id, and transitions are memoized in a table keyed by ``(state_id, tag)``.
After the first occurrence of a tag in a given state, matching that tag
again is a single dict lookup — the lazy DFA construction of Section 2,
with :attr:`StreamMatcher.table_hits` / :attr:`StreamMatcher.table_misses`
exposing how often the table short-circuits the multiset computation.

* each open element carries the multiset of projection tree nodes matched
  exactly at it (``matches``) and the accumulated multiset of ancestor-or-
  self matches that can still extend through descendant steps
  (``cumulative``), plus the interned ``state_id`` of that pair,
* reading an opening tag computes the child's multiset from child-axis
  contributions of the parent's ``matches`` and descendant/dos-axis
  contributions of the parent's ``cumulative``,
* ``[1]`` (first witness) steps are consumed per context node, so only the
  first match per context is preserved (Figure 1's ``price[1]``).  Frames
  that consumed a ``[1]`` step take the matcher off the DFA: the transition
  then depends on how matches distribute across frames, which a
  single-state key cannot see, so it is computed directly (rare),
* ``dos::node()`` leaves assign their role at the node their parent step
  matched — as an *aggregate* role covering the subtree (Section 6) or,
  with ``aggregate_roles=False``, as plain roles on every subtree node
  (the formulation of Sections 2–5 and Figure 2).

Preservation of a token follows the two conditions of Section 2: (1) some
matched projection tree node forces preservation (it carries a role, or the
token lies under an aggregate scope), and (2) the *promotion guard*: a node
is preserved, even without roles, when the current state matches nodes
``v`` (with a child-axis child labeled ``a``) and ``w`` (with a
descendant-axis child labeled ``a``) for overlapping tests — discarding it
would promote a descendant into a false child-axis match (Example 2).

Thread safety (see docs/CONCURRENCY.md).  One matcher may serve concurrent
runs: all per-run state lives in the :class:`MatchFrame` stacks owned by
each run's preprojector, while the shared state — the interned DFA states
and the transition table — is *immutable after publish*: a
:class:`Transition` (and the dicts it carries) is never mutated once it is
stored, and frames only read the dicts they borrow from it.  Publication is
guarded by a single lock taken on the memoization **miss** path only; the
hot hit path (one dict ``get``) stays lock-free.  The ``table_hits`` /
``off_dfa_computes`` counters are updated without the lock and may
undercount under concurrency; they are exact in single-threaded use.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass

from repro.analysis.projection_tree import ProjectionTree, PTNode
from repro.analysis.roles import Role
from repro.xquery.paths import Axis, NodeTest

__all__ = ["MatchFrame", "Transition", "StreamMatcher"]


@dataclass
class Transition:
    """The result of matching one token: everything the preprojector needs."""

    matches: dict[PTNode, int]  # exact matches at the new node
    cumulative: dict[PTNode, int]  # ancestor-or-self matches, desc-capable
    normal_roles: dict[Role, int]
    aggregate_roles: dict[Role, int]
    structural: bool  # preservation condition (2) fired
    consumed_first: list[tuple[int, PTNode]]  # (stack depth, [1]-node) pairs
    state_id: int = -1  # interned DFA state of (matches, cumulative)


class MatchFrame:
    """Matcher state for one open element of the input stream."""

    __slots__ = ("matches", "cumulative", "consumed", "state_id")

    def __init__(
        self,
        matches: dict[PTNode, int],
        cumulative: dict[PTNode, int],
        state_id: int | None = None,
    ) -> None:
        self.matches = matches
        self.cumulative = cumulative
        # [1]-steps already satisfied from this frame's context.
        self.consumed: set[PTNode] = set()
        # Interned DFA state; None for frames built outside the matcher
        # (tests), interned lazily on first lookup.
        self.state_id = state_id


class StreamMatcher:
    """Incremental matcher with an interned-state transition table.

    This is the paper's lazy DFA: states are discovered on demand as the
    document exposes new (``matches``, ``cumulative``) multiset pairs, and
    the transition table maps ``(state_id, tag)`` — with ``tag=None``
    standing for character data — straight to the memoized
    :class:`Transition`.

    Tag strings arriving from the bytes-domain lexer are ``sys.intern``-ed
    (one decode per distinct spelling per document), so the ``(state_id,
    tag)`` keys share one cached hash and pointer-compare on lookup.
    """

    def __init__(self, tree: ProjectionTree, *, aggregate_roles: bool = True) -> None:
        self.tree = tree
        self.aggregate = aggregate_roles
        self._index: dict[int, int] = {}  # id(PTNode) -> small int (state keys)
        for i, node in enumerate(tree.all_nodes()):
            self._index[id(node)] = i
        # Lazy DFA: interned states and the memoized transition table.
        # Readers go lock-free (GIL-atomic dict gets); every write — state
        # interning and transition publication — happens under this lock,
        # which is only ever taken on the miss path.
        self._lock = threading.Lock()
        self._state_ids: dict[tuple, int] = {}
        self._table: dict[tuple[int, str | None], Transition] = {}
        #: Transition-table lookups that hit a memoized transition.
        self.table_hits = 0
        #: Lookups that had to compute (and then memoize) the transition.
        self.table_misses = 0
        #: Tokens matched off-DFA because a frame consumed a [1]-step.
        self.off_dfa_computes = 0

    # ------------------------------------------------------------------

    @property
    def state_count(self) -> int:
        """Number of DFA states discovered so far."""
        return len(self._state_ids)

    @property
    def table_size(self) -> int:
        """Number of memoized transitions."""
        return len(self._table)

    def initial_frame(self) -> MatchFrame:
        """The frame of the document node: the root ``/`` matched once."""
        root = self.tree.root
        matches = {root: 1}
        cumulative = {root: 1} if _desc_capable(root) else {}
        return MatchFrame(matches, cumulative, self._intern(matches, cumulative))

    def match_token(
        self,
        stack: list[MatchFrame],
        *,
        tag: str | None,
        is_text: bool,
        any_consumed: bool | None = None,
    ) -> Transition:
        """Match an opening tag (``tag``) or a text token against the stack.

        The caller applies ``consumed_first`` updates and pushes a new frame
        built from the transition for element tokens.  ``any_consumed``
        short-circuits the per-frame consumption scan when the caller
        already tracks it (the preprojector does); ``None`` means "look".
        """
        if any_consumed is None:
            any_consumed = any(frame.consumed for frame in stack)
        if any_consumed:
            # Past [1]-consumptions make the transition depend on how
            # matches are distributed across frames, which the table key
            # cannot see; compute directly (rare in practice).
            self.off_dfa_computes += 1
            return self._compute(stack, tag=tag, is_text=is_text)
        top = stack[-1]
        state_id = top.state_id
        if state_id is None:
            state_id = top.state_id = self._intern(top.matches, top.cumulative)
        key = (state_id, tag)
        cached = self._table.get(key)
        if cached is not None:
            self.table_hits += 1
            return cached
        self.table_misses += 1
        transition = self._compute(stack, tag=tag, is_text=is_text)
        if not transition.consumed_first:
            # Transitions that consume [1]-steps mutate frame state and are
            # not safely shareable; everything else is.  Publish under the
            # lock: the transition is fully built and never mutated after
            # this point, so concurrent readers either miss (and recompute
            # an identical transition) or see the complete object.
            with self._lock:
                self._table[key] = transition
        return transition

    def frame_for(self, transition: Transition) -> MatchFrame:
        """The frame a start tag pushes: carries the transition's state."""
        return MatchFrame(
            transition.matches, transition.cumulative, transition.state_id
        )

    # ------------------------------------------------------------------

    def _intern(
        self, matches: dict[PTNode, int], cumulative: dict[PTNode, int]
    ) -> int:
        index = self._index
        key = (
            tuple(sorted((index[id(n)], c) for n, c in matches.items())),
            tuple(sorted((index[id(n)], c) for n, c in cumulative.items())),
        )
        state_id = self._state_ids.get(key)
        if state_id is None:
            # Double-checked interning: without the lock two threads could
            # both assign ``len(self._state_ids)`` and alias distinct ids to
            # one multiset state, splitting its transitions across keys.
            with self._lock:
                state_id = self._state_ids.get(key)
                if state_id is None:
                    state_id = self._state_ids[key] = len(self._state_ids)
        return state_id

    def _compute(
        self, stack: list[MatchFrame], *, tag: str | None, is_text: bool
    ) -> Transition:
        top = stack[-1]
        matches: dict[PTNode, int] = {}
        consumed_first: list[tuple[int, PTNode]] = []

        def test_ok(test: NodeTest) -> bool:
            return test.matches_text() if is_text else test.matches_element(tag or "")

        # Child-axis contributions from the parent's exact matches.
        for v, count in top.matches.items():
            for w in v.children:
                if w.step is None or w.step.axis is not Axis.CHILD:
                    continue
                if not test_ok(w.step.test):
                    continue
                if w.step.first:
                    if w in top.consumed:
                        continue
                    consumed_first.append((len(stack) - 1, w))
                matches[w] = matches.get(w, 0) + count

        # Descendant and dos contributions from ancestor-or-self matches.
        for v, count in top.cumulative.items():
            for w in v.children:
                if w.step is None or w.step.axis is Axis.CHILD:
                    continue
                if w.step.axis is Axis.DOS and self.aggregate:
                    # dos::node() roles live on the subtree root (aggregate
                    # mode); descendants inherit instead of matching.
                    continue
                if not test_ok(w.step.test):
                    continue
                if w.step.first:
                    added = self._first_witness_contributions(
                        stack, w, consumed_first
                    )
                    if added:
                        matches[w] = matches.get(w, 0) + added
                    continue
                matches[w] = matches.get(w, 0) + count

        # Roles carried by the matched nodes themselves.
        normal_roles: dict[Role, int] = {}
        for w, count in matches.items():
            if w.role is not None:
                normal_roles[w.role] = normal_roles.get(w.role, 0) + count

        # Self part of dos::node() children: the paper assigns the dos role
        # to the node its parent step matched (Figure 2: book gets r5).
        aggregate_roles: dict[Role, int] = {}
        for w, count in matches.items():
            for u in w.children:
                if u.step is None or u.step.axis is not Axis.DOS:
                    continue
                if u.role is None:
                    continue
                if not test_ok(u.step.test):
                    continue
                target = aggregate_roles if self.aggregate else normal_roles
                target[u.role] = target.get(u.role, 0) + count

        structural = not is_text and self._promotion_guard(top)
        cumulative = dict(top.cumulative)
        for w, count in matches.items():
            if _desc_capable(w) or (not self.aggregate and _has_dos_child(w)):
                cumulative[w] = cumulative.get(w, 0) + count
        return Transition(
            matches=matches,
            cumulative=cumulative,
            normal_roles=normal_roles,
            aggregate_roles=aggregate_roles,
            structural=structural,
            consumed_first=consumed_first,
            state_id=self._intern(matches, cumulative),
        )

    def _first_witness_contributions(
        self,
        stack: list[MatchFrame],
        w: PTNode,
        consumed_first: list[tuple[int, PTNode]],
    ) -> int:
        """Per-frame contributions for a descendant-axis ``[1]`` step.

        Each open element where ``w``'s parent matched is its own context;
        the first witness is consumed per context (frame), so later matches
        in the same subtree are not preserved again.
        """
        parent = w.parent
        added = 0
        for depth, frame in enumerate(stack):
            if w in frame.consumed:
                continue
            count = frame.matches.get(parent, 0)
            if count:
                added += count
                consumed_first.append((depth, w))
        return added

    def _promotion_guard(self, top: MatchFrame) -> bool:
        """Preservation condition (2): child-axis vs descendant-axis clash."""
        child_tests: list[NodeTest] = []
        for v in top.matches:
            for w in v.children:
                if w.step is not None and w.step.axis is Axis.CHILD:
                    child_tests.append(w.step.test)
        if not child_tests:
            return False
        for v in top.cumulative:
            for w in v.children:
                if w.step is None or w.step.axis is Axis.CHILD:
                    continue
                if w.step.axis is Axis.DOS and self.aggregate:
                    # In aggregate mode a dos::node() subtree is preserved
                    # via coverage or not at all — either way no descendant
                    # can outlive this node, so no promotion is possible.
                    continue
                for test in child_tests:
                    if test.overlaps(w.step.test):
                        return True
        return False

    # ------------------------------------------------------------------

    def apply_consumptions(
        self, stack: list[MatchFrame], transition: Transition
    ) -> int:
        """Record consumed [1]-steps; returns how many frames newly hold one.

        The return value lets the preprojector maintain its count of
        consumption-carrying frames without rescanning the stack per token.
        """
        newly_consumed = 0
        for depth, node in transition.consumed_first:
            consumed = stack[depth].consumed
            if not consumed:
                newly_consumed += 1
            consumed.add(node)
        return newly_consumed


def _desc_capable(node: PTNode) -> bool:
    """Does the node have descendant- or dos-axis children to extend through?"""
    return any(
        child.step is not None and child.step.axis is not Axis.CHILD
        for child in node.children
    )


def _has_dos_child(node: PTNode) -> bool:
    return any(
        child.step is not None and child.step.axis is Axis.DOS
        for child in node.children
    )
