"""Baseline engines implementing the competitors' buffering strategies.

Each engine exposes the same interface as
:class:`repro.engine.gcx.GCXEngine` (``compile`` / ``run`` returning a
:class:`repro.engine.gcx.RunResult`), so the benchmark harness treats them
uniformly.  ``ENGINES`` maps registry names to zero-argument factories.
"""

from typing import Callable

from repro.baselines.fluxlike import FluxLikeEngine, UnsupportedQueryError
from repro.baselines.naive import NaiveDomEngine, evaluate_on_tree
from repro.baselines.projection_only import ProjectionOnlyEngine
from repro.engine.gcx import GCXEngine

ENGINES: dict[str, Callable[[], object]] = {
    "gcx": GCXEngine,
    "flux-like": FluxLikeEngine,
    "projection-only": ProjectionOnlyEngine,
    "naive-dom": NaiveDomEngine,
}

#: How Table 1's columns map onto our engines (see docs/ARCHITECTURE.md,
#: "baselines" section, for the substitution rationale).
PAPER_SYSTEM_MAP = {
    "GCX": "gcx",
    "FluXQuery": "flux-like",
    "Galax": "naive-dom",
    "MonetDB": "naive-dom",
    "Saxon": "naive-dom",
    "QizX": "naive-dom",
    "Galax+projection": "projection-only",
}

__all__ = [
    "ENGINES",
    "PAPER_SYSTEM_MAP",
    "GCXEngine",
    "FluxLikeEngine",
    "ProjectionOnlyEngine",
    "NaiveDomEngine",
    "UnsupportedQueryError",
    "evaluate_on_tree",
]
