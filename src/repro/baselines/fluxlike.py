"""The flux-like baseline: scope-based buffering, static analysis only.

Models the buffer-management strategy of the FluXQuery engine [11]
(Koch et al., VLDB'04) as characterized by the paper:

* buffering decisions are purely static; buffers live exactly as long as
  the scope of their XQuery variable,
* descendant axes and wildcard-heavy queries are not supported — the paper
  benchmarks show ``n/a`` for XMark Q6 — so this engine refuses any query
  whose paths leave the child axis,
* duplicate buffering cannot always be avoided when a node is bound by
  different variables (Section 1); the buffer cost model charges a
  duplication factor for this, and per-node overhead reflects a JVM-style
  representation,
* none of GCX's dynamic refinements apply: no early updates, no aggregate
  roles, no redundant-role elimination, no first-witness trimming.

What remains *is* scope-end purging (FluX frees a buffer when its
variable's scope ends), which the shared machinery expresses as signOff
batches at scope ends — so this baseline is flat in document size for
scope-local queries, like the real FluXQuery in Table 1, but consistently
buffers more than GCX.
"""

from __future__ import annotations

from repro.analysis.compile import CompiledQuery, CompileOptions, compile_query
from repro.analysis.schema import Schema
from repro.buffer.stats import BufferCostModel
from repro.engine.gcx import EngineOptions, GCXEngine, RunResult
from repro.xquery.ast import (
    Comparison,
    Exists,
    ForLoop,
    PathOperand,
    PathOutput,
    Query,
    atomic_conditions,
    conditions_of,
    walk,
)
from repro.xquery.paths import Axis, Path, TestKind

__all__ = ["UnsupportedQueryError", "FluxLikeEngine", "FLUX_COST_MODEL"]


class UnsupportedQueryError(ValueError):
    """The query lies outside the engine's fragment (reported as n/a)."""


#: JVM-flavoured cost model: fatter nodes (object headers, UTF-16 strings)
#: and a duplication factor for per-variable buffer copies.
FLUX_COST_MODEL = BufferCostModel(
    node_overhead=112,
    text_byte=2,
    role_instance=16,
    duplication_factor=1.6,
)


class FluxLikeEngine:
    """Schema-based scope buffering without dynamic analysis."""

    name = "flux-like"
    description = "scope-based static buffering (FluXQuery class); child axis only"
    supports_descendant = False

    def __init__(
        self,
        cost_model: BufferCostModel | None = None,
        schema: Schema | None = None,
    ) -> None:
        #: FluXQuery is the schema-*driven* engine of the related work:
        #: the same unified :class:`~repro.analysis.schema.Schema` the GCX
        #: analysis consumes is its default compile-time schema here.
        self.schema = schema
        self._engine = GCXEngine(
            EngineOptions(
                aggregate_roles=False,
                early_updates=False,
                eliminate_redundant_roles=False,
                eager_leaf_bindings=True,
                strict=True,
                cost_model=cost_model or FLUX_COST_MODEL,
            )
        )

    def compile(
        self, query: Query | str, *, schema: Schema | None = None
    ) -> CompiledQuery:
        schema = schema if schema is not None else self.schema
        compiled = compile_query(
            query,
            CompileOptions(
                early_updates=False,
                eliminate_redundant=False,
                first_witness=False,
            ),
            schema=schema,
        )
        self._check_fragment(compiled.normalized)
        if schema is not None:
            self._check_schema(compiled.normalized, schema)
        return compiled

    def run(self, query: Query | str | CompiledQuery, document: str) -> RunResult:
        compiled = query if isinstance(query, CompiledQuery) else self.compile(query)
        return self._engine.run(compiled, document)

    # ------------------------------------------------------------------

    def _check_fragment(self, query: Query) -> None:
        """Reject descendant axes anywhere in the query (FluX's n/a cases)."""
        for expr in walk(query.root):
            if isinstance(expr, (ForLoop, PathOutput)):
                self._check_path(expr.path)
        for cond in conditions_of(query.root):
            for atom in atomic_conditions(cond):
                if isinstance(atom, Exists):
                    self._check_path(atom.path)
                elif isinstance(atom, Comparison):
                    for operand in (atom.left, atom.right):
                        if isinstance(operand, PathOperand):
                            self._check_path(operand.path)

    def _check_path(self, path) -> None:
        for step in path:
            if step.axis is not Axis.CHILD:
                raise UnsupportedQueryError(
                    "flux-like engine supports the child axis only "
                    f"(found {step})"
                )

    def _check_schema(self, query: Query, schema: Schema) -> None:
        """Reject queries naming tags the schema cannot produce.

        FluX compiles against the DTD; a path step whose tag is not in the
        schema at all can never match and the real engine reports it as
        outside its (schema-constrained) fragment.
        """
        for expr in walk(query.root):
            if isinstance(expr, (ForLoop, PathOutput)):
                self._check_tags(expr.path, schema)
        for cond in conditions_of(query.root):
            for atom in atomic_conditions(cond):
                if isinstance(atom, Exists):
                    self._check_tags(atom.path, schema)
                elif isinstance(atom, Comparison):
                    for operand in (atom.left, atom.right):
                        if isinstance(operand, PathOperand):
                            self._check_tags(operand.path, schema)

    @staticmethod
    def _check_tags(path: Path, schema: Schema) -> None:
        for step in path:
            if step.test.kind is TestKind.TAG and step.test.name not in schema.tags:
                raise UnsupportedQueryError(
                    f"tag {step.test.name!r} does not occur in the schema"
                )
