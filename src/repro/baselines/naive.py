"""The naive in-memory baseline: buffer everything, then evaluate.

Models the class of engines in Table 1 that load the complete document
before query evaluation — Galax (the XQuery reference implementation,
"not designed with XML stream processing in mind"), Saxon and QizX.  Their
memory high watermark is proportional to the whole document regardless of
the query, which is exactly the behaviour this engine reproduces under the
shared buffer cost model.

The evaluator here is deliberately independent from the streaming engine:
it interprets the *normalized* query (no signOffs) over a DOM built by
:func:`repro.xmlio.tree.parse_tree`.  Tests use it as the semantic oracle
for every other engine.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.analysis.compile import CompiledQuery, CompileOptions, compile_query
from repro.buffer.stats import BufferCostModel, BufferStats
from repro.engine.evaluator import _compare
from repro.engine.gcx import RunResult
from repro.xmlio.serialize import StringSink
from repro.xmlio.tokens import EndTag, StartTag, Text
from repro.xmlio.tree import DocumentNode, ElementNode, TextNode, XMLNode, parse_tree
from repro.engine.relops.aggregates import format_number
from repro.xquery.ast import (
    Aggregate,
    And,
    CloseTag,
    Comparison,
    Condition,
    Element,
    Empty,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    LiteralOperand,
    Not,
    OpenTag,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    ROOT_VAR,
    Sequence,
    SignOff,
    TextLiteral,
    TrueCond,
    VarRef,
)
from repro.xquery.paths import Axis, Path, Step

__all__ = ["NaiveDomEngine", "evaluate_on_tree"]


class NaiveDomEngine:
    """Parse the whole document into memory, then evaluate the query."""

    name = "naive-dom"
    description = "full in-memory DOM, no projection (Galax/Saxon/QizX class)"
    supports_descendant = True

    def __init__(self, cost_model: BufferCostModel | None = None) -> None:
        self.cost_model = cost_model or BufferCostModel()

    def compile(self, query: Query | str, *, schema=None) -> CompiledQuery:
        # Analysis is only needed for normalization; the Section 6
        # optimizations are meaningless without a managed buffer.  A schema
        # still yields the constraint report on the compiled artifact.
        return compile_query(
            query,
            CompileOptions(early_updates=False, eliminate_redundant=False),
            schema=schema,
        )

    def run(self, query: Query | str | CompiledQuery, document: str) -> RunResult:
        compiled = query if isinstance(query, CompiledQuery) else self.compile(query)
        started = time.perf_counter()
        tree = parse_tree(document)
        stats = BufferStats(model=self.cost_model)
        self._account_tree(tree, stats)
        sink = StringSink()
        evaluate_on_tree(compiled.normalized, tree, sink)
        elapsed = time.perf_counter() - started
        return RunResult(
            output=sink.getvalue(),
            stats=stats,
            compiled=compiled,
            elapsed_seconds=elapsed,
            exhausted_input=True,
        )

    def _account_tree(self, tree: DocumentNode, stats: BufferStats) -> None:
        for node in tree.iter_subtree():
            if isinstance(node, DocumentNode):
                continue
            if isinstance(node, TextNode):
                stats.on_create(stats.model.text_cost(node.content))
            else:
                stats.on_create(stats.model.element_cost())


# ---------------------------------------------------------------------------
# The DOM evaluator (semantic oracle)
# ---------------------------------------------------------------------------


def evaluate_on_tree(query: Query, tree: DocumentNode, sink) -> None:
    """Evaluate a normalized XQ query over a DOM, writing output tokens."""
    _Interp(tree, sink).eval(query.root, {ROOT_VAR: tree})


class _Interp:
    def __init__(self, tree: DocumentNode, sink) -> None:
        self.tree = tree
        self.sink = sink

    def eval(self, expr: Expr, env: dict[str, XMLNode]) -> None:
        if isinstance(expr, Empty) or isinstance(expr, SignOff):
            return
        if isinstance(expr, Sequence):
            for item in expr.items:
                self.eval(item, env)
        elif isinstance(expr, Element):
            self.sink.write(StartTag(expr.tag))
            self.eval(expr.body, env)
            self.sink.write(EndTag(expr.tag))
        elif isinstance(expr, OpenTag):
            self.sink.write(StartTag(expr.tag))
        elif isinstance(expr, CloseTag):
            self.sink.write(EndTag(expr.tag))
        elif isinstance(expr, TextLiteral):
            self.sink.write(Text(expr.content))
        elif isinstance(expr, VarRef):
            self._output(env[expr.var])
        elif isinstance(expr, PathOutput):
            for node in iter_path(env[expr.var], expr.path):
                self._output(node)
        elif isinstance(expr, ForLoop):
            for node in iter_path(env[expr.source], expr.path):
                env[expr.var] = node
                self.eval(expr.body, env)
            env.pop(expr.var, None)
        elif isinstance(expr, IfThenElse):
            branch = expr.then_branch if self.cond(expr.cond, env) else expr.else_branch
            self.eval(branch, env)
        elif isinstance(expr, Aggregate):
            self._aggregate(expr, env)
        else:
            raise TypeError(f"cannot evaluate {expr!r}")

    def _aggregate(self, expr: Aggregate, env: dict[str, XMLNode]) -> None:
        count = 0
        total = 0.0
        numeric_n = 0
        for node in iter_path(env[expr.var], expr.path):
            count += 1
            if expr.func in ("sum", "avg"):
                try:
                    value = float(node.string_value())
                except ValueError:
                    continue
                total += value
                numeric_n += 1
        if expr.func == "count":
            self.sink.write(Text(str(count)))
        elif expr.func == "sum":
            self.sink.write(Text(format_number(total)))
        elif numeric_n:  # avg of an empty/non-numeric sequence is no output
            self.sink.write(Text(format_number(total / numeric_n)))

    def cond(self, cond: Condition, env: dict[str, XMLNode]) -> bool:
        if isinstance(cond, TrueCond):
            return True
        if isinstance(cond, Exists):
            return any(True for _ in iter_path(env[cond.var], cond.path))
        if isinstance(cond, Quantified):
            some = cond.quantifier == "some"
            for witness in iter_path(env[cond.source], cond.path):
                env[cond.var] = witness
                try:
                    holds = self.cond(cond.inner, env)
                finally:
                    env.pop(cond.var, None)
                if some:
                    if holds:
                        return True
                elif not holds:
                    return False
            return not some
        if isinstance(cond, Comparison):
            left = list(self._values(cond.left, env))
            if not left:
                return False
            for right_value in self._values(cond.right, env):
                if any(_compare(lv, cond.op, right_value) for lv in left):
                    return True
            return False
        if isinstance(cond, And):
            return self.cond(cond.left, env) and self.cond(cond.right, env)
        if isinstance(cond, Or):
            return self.cond(cond.left, env) or self.cond(cond.right, env)
        if isinstance(cond, Not):
            return not self.cond(cond.operand, env)
        raise TypeError(f"cannot evaluate condition {cond!r}")

    def _values(self, operand, env) -> Iterator[str]:
        if isinstance(operand, LiteralOperand):
            yield operand.value
            return
        assert isinstance(operand, PathOperand)
        for node in iter_path(env[operand.var], operand.path):
            yield node.string_value()

    def _output(self, node: XMLNode) -> None:
        if isinstance(node, TextNode):
            self.sink.write(Text(node.content))
        elif isinstance(node, ElementNode):
            self.sink.write(StartTag(node.tag))
            for child in node.children:
                self._output(child)
            self.sink.write(EndTag(node.tag))
        else:
            raise TypeError("cannot output the document node")


def iter_path(context: XMLNode, path: Path) -> Iterator[XMLNode]:
    """All nodes reachable via ``path`` (single-step doc order per level)."""
    if not path:
        yield context
        return
    step, rest = path[0], path[1:]
    if step.last:
        final: XMLNode | None = None
        for node in iter_step(context, step):
            final = node
        if final is not None:
            yield from iter_path(final, rest)
        return
    for node in iter_step(context, step):
        yield from iter_path(node, rest)
        if step.first:
            return


def iter_step(context: XMLNode, step: Step) -> Iterator[XMLNode]:
    if step.axis is Axis.CHILD:
        candidates: Iterator[XMLNode] = iter(context.children)
    elif step.axis is Axis.DESCENDANT:
        candidates = context.descendants()
    else:  # DOS
        candidates = context.iter_subtree()
    for node in candidates:
        if step_matches(node, step):
            yield node


def step_matches(node: XMLNode, step: Step) -> bool:
    if isinstance(node, TextNode):
        return step.test.matches_text()
    if isinstance(node, ElementNode):
        return step.test.matches_element(node.tag)
    return False
