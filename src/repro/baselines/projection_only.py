"""The static-analysis-only baseline: projection without garbage collection.

Models Galax's static projection [13] and, more broadly, every scheme the
paper argues against in Section 1: what to buffer is decided purely at
compile time, the projected document is computed *before* query evaluation
starts, and nothing is purged while the query runs.  The memory high
watermark is therefore the size of the whole projected document — small for
selective queries, but still growing linearly with the input, in contrast
to GCX's combined static + dynamic scheme.

Implementation: the same projection machinery as GCX (same projection tree,
same matcher), run to completion up front; the evaluator then runs with
signOff execution disabled, so no roles are ever removed.
"""

from __future__ import annotations

import time

from repro.analysis.compile import CompiledQuery, CompileOptions, compile_query
from repro.buffer.buffer import BufferTree
from repro.buffer.stats import BufferCostModel
from repro.engine.evaluator import Evaluator
from repro.engine.gcx import RunResult
from repro.stream.preprojector import StreamPreprojector
from repro.xmlio.lexer import tokenize
from repro.xmlio.serialize import StringSink
from repro.xquery.ast import Query

__all__ = ["ProjectionOnlyEngine"]


class ProjectionOnlyEngine:
    """Static document projection up front, no runtime buffer minimization."""

    name = "projection-only"
    description = "static projection before evaluation, no GC (Galax projection)"
    supports_descendant = True

    def __init__(self, cost_model: BufferCostModel | None = None) -> None:
        self.cost_model = cost_model or BufferCostModel()

    def compile(self, query: Query | str, *, schema=None) -> CompiledQuery:
        # Early updates and redundant-role elimination only matter for
        # dynamic buffer minimization; first-witness trimming is part of the
        # *static* projection (Marian & Simeon keep prefixes too), so it
        # stays on.  A schema still yields the constraint report.
        return compile_query(
            query,
            CompileOptions(early_updates=False, eliminate_redundant=False),
            schema=schema,
        )

    def run(self, query: Query | str | CompiledQuery, document: str) -> RunResult:
        compiled = query if isinstance(query, CompiledQuery) else self.compile(query)
        started = time.perf_counter()
        buffer = BufferTree(self.cost_model, strict=False)
        preprojector = StreamPreprojector(
            tokenize(document),
            compiled.projection_tree,
            buffer,
            aggregate_roles=True,
        )
        # Phase 1 (the Galax way): project the complete input document.
        preprojector.run_to_completion()
        # Phase 2: evaluate on the projected buffer; nothing is purged.
        sink = StringSink()
        evaluator = Evaluator(
            compiled.rewritten,
            buffer,
            preprojector,
            sink,
            aggregate_roles=True,
            execute_signoffs=False,
        )
        evaluator.run()
        elapsed = time.perf_counter() - started
        return RunResult(
            output=sink.getvalue(),
            stats=buffer.stats,
            compiled=compiled,
            elapsed_seconds=elapsed,
            exhausted_input=True,
        )
