"""XMark substrate: schema, deterministic generator, adapted queries."""

from repro.xmark.dtd import DTDViolation, render_dtd, schema_tags, validate_document
from repro.xmark.generator import XMarkConfig, generate_xmark, xmark_scale_for_bytes
from repro.xmark.queries import TABLE1_QUERIES, XMARK_QUERIES, XMarkQuery
from repro.xmark.schema import ELEMENT_CHILDREN, REGIONS, SCALE_BASE, validate_order

__all__ = [
    "generate_xmark",
    "xmark_scale_for_bytes",
    "XMarkConfig",
    "XMARK_QUERIES",
    "TABLE1_QUERIES",
    "XMarkQuery",
    "ELEMENT_CHILDREN",
    "REGIONS",
    "SCALE_BASE",
    "validate_order",
    "render_dtd",
    "schema_tags",
    "validate_document",
    "DTDViolation",
]
