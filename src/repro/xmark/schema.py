"""The XMark schema (auctions DTD), adapted to the paper's data model.

The benchmark adaptation of Section 7 applies: *"we converted XML
attributes into subelements"* — so ``<person id="person0">`` becomes
``<person><id>person0</id>...``, ``profile/@income`` becomes
``profile/income``, and ``buyer/@person`` becomes ``buyer/person``.

``ELEMENT_CHILDREN`` mirrors the DTD's content models (after attribute
conversion) and is used by the generator and by schema-conformance tests;
``REGIONS`` lists the six continent containers.  :func:`xmark_schema`
lifts the same tables into the first-class
:class:`~repro.analysis.schema.Schema` the static analysis consumes —
the tables here stay the single source of truth, the ``Schema`` object is
the single representation every analysis/runtime layer reasons against.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.schema import Schema

__all__ = [
    "REGIONS",
    "ELEMENT_CHILDREN",
    "SCALE_BASE",
    "validate_order",
    "xmark_schema",
]

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

# element -> allowed children in order (a simplified regular content model:
# each entry is (child tag, min occurs, max occurs) with None = unbounded).
ELEMENT_CHILDREN: dict[str, tuple[tuple[str, int, object], ...]] = {
    "site": (
        ("regions", 1, 1),
        ("categories", 1, 1),
        ("catgraph", 1, 1),
        ("people", 1, 1),
        ("open_auctions", 1, 1),
        ("closed_auctions", 1, 1),
    ),
    "regions": tuple((region, 1, 1) for region in REGIONS),
    **{region: (("item", 0, None),) for region in REGIONS},
    "item": (
        ("id", 1, 1),
        ("location", 1, 1),
        ("quantity", 1, 1),
        ("name", 1, 1),
        ("payment", 1, 1),
        ("description", 1, 1),
        ("shipping", 1, 1),
        ("incategory", 1, None),
        ("mailbox", 1, 1),
    ),
    "categories": (("category", 0, None),),
    "category": (("id", 1, 1), ("name", 1, 1), ("description", 1, 1)),
    "catgraph": (("edge", 0, None),),
    "edge": (("from", 1, 1), ("to", 1, 1)),
    "people": (("person", 0, None),),
    "person": (
        ("id", 1, 1),
        ("name", 1, 1),
        ("emailaddress", 1, 1),
        ("phone", 0, 1),
        ("address", 0, 1),
        ("homepage", 0, 1),
        ("creditcard", 0, 1),
        ("profile", 0, 1),
        ("watches", 0, 1),
    ),
    "address": (
        ("street", 1, 1),
        ("city", 1, 1),
        ("country", 1, 1),
        ("zipcode", 1, 1),
    ),
    "profile": (
        ("income", 0, 1),  # was profile/@income
        ("interest", 0, None),
        ("education", 0, 1),
        ("gender", 0, 1),
        ("business", 1, 1),
        ("age", 0, 1),
    ),
    "interest": (("category", 1, 1),),  # was interest/@category
    "incategory": (("category", 1, 1),),  # was incategory/@category
    "watches": (("watch", 0, None),),
    "watch": (("open_auction", 1, 1),),  # was watch/@open_auction
    "open_auctions": (("open_auction", 0, None),),
    "open_auction": (
        ("id", 1, 1),
        ("initial", 1, 1),
        ("bidder", 0, None),
        ("current", 1, 1),
        ("privacy", 0, 1),
        ("itemref", 1, 1),
        ("seller", 1, 1),
        ("annotation", 1, 1),
        ("quantity", 1, 1),
        ("type", 1, 1),
        ("interval", 1, 1),
    ),
    "bidder": (
        ("date", 1, 1),
        ("time", 1, 1),
        ("personref", 1, 1),
        ("increase", 1, 1),
    ),
    "personref": (("person", 1, 1),),  # was personref/@person
    "itemref": (("item", 1, 1),),  # was itemref/@item
    "seller": (("person", 1, 1),),  # was seller/@person
    "buyer": (("person", 1, 1),),  # was buyer/@person
    "interval": (("start", 1, 1), ("end", 1, 1)),
    "closed_auctions": (("closed_auction", 0, None),),
    "closed_auction": (
        ("seller", 1, 1),
        ("buyer", 1, 1),
        ("itemref", 1, 1),
        ("price", 1, 1),
        ("date", 1, 1),
        ("quantity", 1, 1),
        ("type", 1, 1),
        ("annotation", 1, 1),
    ),
    "annotation": (("author", 1, 1), ("description", 1, 1), ("happiness", 1, 1)),
    "author": (("person", 1, 1),),  # was author/@person
    "description": (("text", 0, 1), ("parlist", 0, 1)),
    "parlist": (("listitem", 0, None),),
    "listitem": (("text", 0, 1), ("parlist", 0, 1)),
    "mailbox": (("mail", 0, None),),
    "mail": (("from", 1, 1), ("to", 1, 1), ("date", 1, 1), ("text", 1, 1)),
}

#: Positions where a tag is a *reference leaf* (text content) rather than a
#: structural element.  The attribute conversion creates these collisions:
#: ``<buyer person="p0">`` becomes ``<buyer><person>p0</person></buyer>``,
#: where ``person`` is a leaf even though person *records* have a content
#: model.  Validators must treat (parent, child) pairs listed here as PCDATA.
REFERENCE_POSITIONS: frozenset[tuple[str, str]] = frozenset(
    {
        ("seller", "person"),
        ("buyer", "person"),
        ("personref", "person"),
        ("author", "person"),
        ("interest", "category"),
        ("incategory", "category"),
        ("watch", "open_auction"),
        ("itemref", "item"),
    }
)

#: Entity counts at scale factor 1.0 (the original xmlgen proportions;
#: f = 1.0 yields roughly a 100 MB document with the real generator).
SCALE_BASE = {
    "items": 21_750,
    "persons": 25_500,
    "open_auctions": 12_000,
    "closed_auctions": 9_750,
    "categories": 1_000,
    "catgraph_edges": 1_000,
}


@lru_cache(maxsize=1)
def xmark_schema() -> Schema:
    """The XMark content models as a first-class analysis schema.

    Built once and cached; this is the object ``compile_query(query,
    schema=...)``, the flux-like baseline, and the DTD renderer/validator
    all share.
    """
    return Schema.from_content_models(ELEMENT_CHILDREN, REFERENCE_POSITIONS)


def validate_order(parent: str, children: list[str]) -> bool:
    """Check a child tag sequence against the (simplified) content model.

    Used by schema-conformance tests on generated documents.  Leaf elements
    (no entry in ``ELEMENT_CHILDREN``) accept text only, hence ``children``
    must be empty for them.  Thin wrapper over
    :meth:`repro.analysis.schema.Schema.validate_children`.
    """
    from repro.analysis.schema import SchemaViolation

    try:
        xmark_schema().validate_children(parent, list(children))
    except SchemaViolation:
        return False
    return True
