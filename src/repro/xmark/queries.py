"""XMark queries Q1, Q5, Q6, Q8, Q9, Q13, Q15, Q17, Q20 in the XQ fragment.

The adaptation follows Section 7 verbatim:

* XML attributes were converted into subelements (so ``$p/@id`` becomes
  ``$p/id``, ``profile/@income`` becomes ``profile/income``),
* aggregations such as ``count($x)`` are replaced by outputting the value
  of ``$x`` instead (Q6 outputs the items; Q8 outputs one marker per join
  partner; Q20 outputs one classification marker per person),
* multi-step paths in for-loops were rewritten to single-step paths
  (nested for-loops).  Paths in conditions may keep several steps, as in
  the paper's own adaptation.

Each entry records the original XMark text for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = ["XMarkQuery", "XMARK_QUERIES", "TABLE1_QUERIES"]


@lru_cache(maxsize=None)
def _compiled_join_sites(adapted: str) -> int:
    from repro.analysis.compile import compile_query

    return len(compile_query(adapted).joinplan)


@dataclass(frozen=True)
class XMarkQuery:
    """One adapted benchmark query."""

    name: str  # e.g. "Q1"
    title: str
    original: str  # the XMark 1.0 formulation (with attributes)
    adapted: str  # the XQ formulation used by the benchmarks
    uses_descendant: bool = False  # flux-like engines report n/a

    def uses_join(self) -> bool:
        """Does this query carry a value-based join?

        Derived from the compiled plan (``repro.analysis.joinplan``)
        rather than hand-flagged: a query joins exactly when the join
        planner finds an equi-join loop to dispatch to the hash operator.
        """
        return _compiled_join_sites(self.adapted) > 0


Q1 = XMarkQuery(
    name="Q1",
    title="Return the name of the person with ID 'person0'",
    original=(
        'for $b in /site/people/person where $b/@id = "person0" '
        "return $b/name/text()"
    ),
    adapted="""
<XMark-Q1>{
  for $s in /site return
  for $pl in $s/people return
  for $p in $pl/person return
    if ($p/id = "person0") then $p/name/text() else ()
}</XMark-Q1>
""",
)

Q6 = XMarkQuery(
    name="Q6",
    title="How many items are listed on all continents?",
    original="for $b in /site/regions return count($b//item)",
    adapted="""
<XMark-Q6>{
  for $s in /site return
  for $r in $s/regions return
  for $i in $r//item return $i
}</XMark-Q6>
""",
    uses_descendant=True,
)

Q8 = XMarkQuery(
    name="Q8",
    title="List the names of persons and the number of items they bought",
    original=(
        "for $p in /site/people/person "
        "let $a := for $t in /site/closed_auctions/closed_auction "
        "where $t/buyer/@person = $p/@id return $t "
        'return <item person="{$p/name/text()}">{count($a)}</item>'
    ),
    adapted="""
<XMark-Q8>{
  for $s in /site return
  for $pl in $s/people return
  for $p in $pl/person return
    <item>{
      ($p/name/text(),
       for $s2 in /site return
       for $ca in $s2/closed_auctions return
       for $t in $ca/closed_auction return
         if ($t/buyer/person = $p/id) then <sale/> else ())
    }</item>
}</XMark-Q8>
""",
)

Q5 = XMarkQuery(
    name="Q5",
    title="How many sold items are listed in total?",
    original=(
        "count(for $i in /site/closed_auctions/closed_auction "
        "where $i/price/text() >= 40 return $i/price)"
    ),
    # The price filter is dropped (the fragment's count() takes a path);
    # what remains is the aggregate itself, answered by the O(1)
    # accumulator with zero buffered subtree nodes (docs/JOINS.md).
    adapted="""
<XMark-Q5>{
  for $s in /site return
  for $cas in $s/closed_auctions return
    count($cas/closed_auction)
}</XMark-Q5>
""",
)

Q9 = XMarkQuery(
    name="Q9",
    title="List the names of persons and the items they bought",
    original=(
        "for $p in /site/people/person let $a := for $t in "
        "/site/closed_auctions/closed_auction where $p/@id = $t/buyer/@person "
        "return let $n := for $t2 in /site/regions/europe/item where "
        "$t/itemref/@item = $t2/@id return $t2 return <item>{$n/name/text()}"
        '</item> return <person name="{$p/name/text()}">{$a}</person>'
    ),
    # The Europe leg of the three-way join is dropped (itemref values are
    # output directly); the remaining person x closed_auction equi-join is
    # the hash-join benchmark partner of Q8 (probe returns the item refs
    # instead of a count marker).
    adapted="""
<XMark-Q9>{
  for $s in /site return
  for $pl in $s/people return
  for $p in $pl/person return
    <person>{
      ($p/name/text(),
       for $s2 in /site return
       for $ca in $s2/closed_auctions return
       for $t in $ca/closed_auction return
         if ($t/buyer/person = $p/id)
           then <bought>{$t/itemref/item/text()}</bought> else ())
    }</person>
}</XMark-Q9>
""",
)

Q13 = XMarkQuery(
    name="Q13",
    title="List the names of items registered in Australia with descriptions",
    original=(
        "for $i in /site/regions/australia/item "
        'return <item name="{$i/name/text()}">{$i/description}</item>'
    ),
    adapted="""
<XMark-Q13>{
  for $s in /site return
  for $r in $s/regions return
  for $a in $r/australia return
  for $i in $a/item return
    <item>{($i/name/text(), $i/description)}</item>
}</XMark-Q13>
""",
)

Q20 = XMarkQuery(
    name="Q20",
    title="Group customers by income (preferred/standard/challenge/na)",
    original=(
        "<result><preferred>{count(/site/people/person/profile[@income >= 100000])}"
        "</preferred><standard>{count(/site/people/person/profile"
        "[@income < 100000 and @income >= 30000])}</standard><challenge>"
        "{count(/site/people/person/profile[@income < 30000])}</challenge>"
        "<na>{count(for $p in /site/people/person where "
        "empty($p/profile/@income) return $p)}</na></result>"
    ),
    # Q20 is taken from the FluXQuery distribution [7] (one streaming pass,
    # one classification marker per person), with multi-step for-loop paths
    # already split; condition paths keep two steps as in the paper.
    adapted="""
<XMark-Q20>{
  for $s in /site return
  for $pl in $s/people return
  for $p in $pl/person return
    (if ($p/profile/income >= "100000") then <preferred/> else (),
     if ($p/profile/income < "100000" and $p/profile/income >= "30000")
       then <standard/> else (),
     if ($p/profile/income < "30000") then <challenge/> else (),
     if (not(exists $p/profile/income)) then <na/> else ())
}</XMark-Q20>
""",
)

Q15 = XMarkQuery(
    name="Q15",
    title="List the contents of deeply nested description texts",
    original=(
        "for $a in /site/closed_auctions/closed_auction/annotation/description/"
        "parlist/listitem/text return <text>{$a/text()}</text>"
    ),
    # Not part of Table 1; included because deep child-paths stress the
    # nested-loop normalization the paper's adaptation relies on.
    adapted="""
<XMark-Q15>{
  for $s in /site return
  for $cas in $s/closed_auctions return
  for $ca in $cas/closed_auction return
  for $an in $ca/annotation return
  for $d in $an/description return
  for $pl in $d/parlist return
  for $li in $pl/listitem return
  for $t in $li/text return
    <text>{$t/text()}</text>
}</XMark-Q15>
""",
)

Q17 = XMarkQuery(
    name="Q17",
    title="Which persons don't have a homepage?",
    original=(
        "for $p in /site/people/person where empty($p/homepage/text()) "
        'return <person name="{$p/name/text()}"/>'
    ),
    # Not part of Table 1; exercises negated existence (the same pattern as
    # the introduction's price check) on real benchmark data.
    adapted="""
<XMark-Q17>{
  for $s in /site return
  for $pl in $s/people return
  for $p in $pl/person return
    if (not(exists $p/homepage)) then <person>{$p/name/text()}</person> else ()
}</XMark-Q17>
""",
)

XMARK_QUERIES: dict[str, XMarkQuery] = {
    q.name: q for q in (Q1, Q5, Q6, Q8, Q9, Q13, Q15, Q17, Q20)
}

#: The rows of Table 1, in the paper's order (Q5/Q9/Q15/Q17 are extras).
TABLE1_QUERIES = ("Q1", "Q6", "Q8", "Q13", "Q20")
