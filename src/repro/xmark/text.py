"""Deterministic text sources for the XMark generator.

The original ``xmlgen`` fills descriptions with Shakespeare vocabulary; we
ship a fixed word list and draw from it with a seeded RNG so documents are
fully reproducible across runs and platforms.
"""

from __future__ import annotations

import random

__all__ = ["WORDS", "FIRST_NAMES", "LAST_NAMES", "COUNTRIES", "CITIES", "sentence"]

WORDS = (
    "gold silver bronze merchant vessel harbor voyage cargo ledger contract "
    "auction bidder gavel estate manor orchard meadow harvest granary mill "
    "weaver loom tapestry crimson azure ochre marble granite quarry mason "
    "guild charter seal parchment quill scribe archive census tithe toll "
    "bridge causeway rampart bastion garrison herald banner crest shield "
    "falcon heron sparrow thicket bramble fen moor heath glen brook ford "
    "lantern beacon ember hearth kettle cellar vintage cask barrel amber "
    "spice saffron pepper clove caravan bazaar stall wares trinket amulet "
    "compass sextant chart meridian latitude monsoon trade winds ballast "
    "keel mast rigging anchor wharf quay customs tariff invoice receipt "
    "courier packet dispatch missive treaty envoy consul province hamlet "
    "borough shire county parish freehold tenure deed escrow surety bond"
).split()

FIRST_NAMES = (
    "Aline Bakul Chen Dagmar Emeka Farid Greta Hiro Ines Jorge Kavya Lars "
    "Mei Nadia Otto Priya Quentin Rosa Samir Tala Ulrich Vera Wei Ximena "
    "Yusuf Zofia Anders Bianca Carlos Devi Elif Franz"
).split()

LAST_NAMES = (
    "Abara Brandt Castillo Duarte Eriksen Fontaine Grimaldi Hansen Ivanov "
    "Johansson Kowalski Lindqvist Moreau Novak Okafor Petrov Quiroga Rossi "
    "Sato Tanaka Ueda Varga Weber Xu Yamamoto Zhang Almeida Becker"
).split()

COUNTRIES = (
    "Angola Brazil Canada Denmark Egypt France Germany Hungary India Japan "
    "Kenya Laos Mexico Norway Oman Peru Qatar Romania Spain Turkey Uganda "
    "Vietnam Yemen Zambia"
).split()

CITIES = (
    "Avalon Brightwater Cedarholm Dunmore Eastmarch Fairhaven Graystone "
    "Highfield Ironbridge Juniper Kingsport Lakeshore Millbrook Northgate "
    "Oakvale Pinecrest Quarrytown Riverton Stonebridge Thornbury"
).split()


def sentence(rng: random.Random, min_words: int = 4, max_words: int = 14) -> str:
    """A deterministic pseudo-sentence from the word list."""
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(WORDS) for _ in range(count))
