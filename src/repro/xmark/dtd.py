"""The adapted XMark DTD and a lightweight validator.

The paper provides the XMark DTD to FluXQuery ("In our experiments, we
provided the XMark DTD to FluXQuery"); schema-based engines use it to
decide what can be emitted on the fly.  This module is a thin facade over
the unified :class:`~repro.analysis.schema.Schema` object
(:func:`repro.xmark.schema.xmark_schema`): it renders the *adapted* DTD —
attributes already converted to subelements, matching the benchmark
streams — and validates documents against it.

``schema_tags`` is what the flux-like engine consults to warn about query
tags that cannot occur in any document (a cheap form of the schema
reasoning FluX performs); the full reasoning now lives in
:mod:`repro.analysis.schema_constraints`.
"""

from __future__ import annotations

from repro.analysis.schema import SchemaViolation
from repro.xmark.schema import xmark_schema
from repro.xmlio.tree import DocumentNode

__all__ = ["render_dtd", "schema_tags", "validate_document", "DTDViolation"]

#: Backwards-compatible name: DTD violations *are* schema violations now
#: that the duplicated schema representations are unified.
DTDViolation = SchemaViolation


def render_dtd(root: str = "site") -> str:
    """Render the adapted content models as DTD text.

    Leaf elements (absent from the schema table) contain character data.
    Occurrence indicators follow the min/max bounds: ``?`` for optional,
    ``*`` for unbounded-from-zero, ``+`` for unbounded-from-one.  The
    output round-trips through
    :meth:`repro.analysis.schema.Schema.from_dtd_text` losslessly
    (reference positions ride in a structured comment).
    """
    return xmark_schema().to_dtd()


def schema_tags() -> frozenset[str]:
    """All element tags that can occur in an XMark document."""
    return xmark_schema().tags


def validate_document(document: str | DocumentNode) -> int:
    """Validate a document against the content models.

    Returns the number of elements checked; raises :class:`DTDViolation`
    on the first offending element.
    """
    return xmark_schema().validate_document(document)
