"""The adapted XMark DTD and a lightweight validator.

The paper provides the XMark DTD to FluXQuery ("In our experiments, we
provided the XMark DTD to FluXQuery"); schema-based engines use it to decide
what can be emitted on the fly.  This module renders the *adapted* DTD —
attributes already converted to subelements, matching the benchmark streams
— from the content models in :mod:`repro.xmark.schema`, and validates
documents against it.

``schema_tags`` is what the flux-like engine consults to warn about query
tags that cannot occur in any document (a cheap form of the schema
reasoning FluX performs).
"""

from __future__ import annotations


from repro.xmark.schema import ELEMENT_CHILDREN, REFERENCE_POSITIONS, validate_order
from repro.xmlio.tree import DocumentNode, ElementNode, parse_tree

__all__ = ["render_dtd", "schema_tags", "validate_document", "DTDViolation"]


class DTDViolation(ValueError):
    """A document does not conform to the (simplified) content model."""


def render_dtd(root: str = "site") -> str:
    """Render the adapted content models as DTD text.

    Leaf elements (absent from the schema table) contain character data.
    Occurrence indicators follow the min/max bounds: ``?`` for optional,
    ``*`` for unbounded-from-zero, ``+`` for unbounded-from-one.
    """
    lines = [f"<!-- XMark DTD, adapted: attributes are subelements -->"]
    leaves: set[str] = set()
    for parent, model in ELEMENT_CHILDREN.items():
        parts = []
        for tag, min_occurs, max_occurs in model:
            if max_occurs is None:
                suffix = "*" if min_occurs == 0 else "+"
            elif min_occurs == 0:
                suffix = "?"
            else:
                suffix = ""
            parts.append(tag + suffix)
            if tag not in ELEMENT_CHILDREN:
                leaves.add(tag)
        lines.append(f"<!ELEMENT {parent} ({', '.join(parts)})>")
    for leaf in sorted(leaves):
        lines.append(f"<!ELEMENT {leaf} (#PCDATA)>")
    return "\n".join(lines) + "\n"


def schema_tags() -> frozenset[str]:
    """All element tags that can occur in an XMark document."""
    tags = set(ELEMENT_CHILDREN)
    for model in ELEMENT_CHILDREN.values():
        tags.update(tag for tag, _min, _max in model)
    return frozenset(tags)


def validate_document(document: str | DocumentNode) -> int:
    """Validate a document against the content models.

    Returns the number of elements checked; raises :class:`DTDViolation`
    on the first offending element.
    """
    tree = parse_tree(document) if isinstance(document, str) else document
    known = schema_tags()
    checked = 0

    def visit(node: ElementNode, is_reference: bool) -> None:
        nonlocal checked
        if node.tag not in known:
            raise DTDViolation(f"unknown element <{node.tag}>")
        child_tags = [
            child.tag for child in node.children if isinstance(child, ElementNode)
        ]
        if is_reference or node.tag not in ELEMENT_CHILDREN:
            if child_tags:
                raise DTDViolation(
                    f"leaf element <{node.tag}> must not have element children"
                )
        elif not validate_order(node.tag, child_tags):
            raise DTDViolation(
                f"<{node.tag}> has children {child_tags} violating its "
                "content model"
            )
        checked += 1
        for child in node.children:
            if isinstance(child, ElementNode):
                visit(child, (node.tag, child.tag) in REFERENCE_POSITIONS)

    root = tree.root_element
    if root is not None:
        visit(root, False)
    return checked
