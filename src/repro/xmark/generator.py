"""A deterministic XMark document generator (the ``xmlgen`` substitute).

Generates auction documents following :mod:`repro.xmark.schema` — the
original XMark DTD with attributes already converted to subelements, which
is the form the paper benchmarks against ("all systems were benchmarked
using the adapted streams").  A seeded RNG makes documents reproducible;
entity counts scale linearly with the scale factor using the original
xmlgen proportions (f = 1.0 is roughly a 100 MB document there; this
generator produces comparable bytes-per-f, so the benchmark harness can
request documents by size).

``generate_xmark`` returns the document text; ``xmark_scale_for_bytes``
estimates the scale factor for a byte budget (calibrated empirically and
refined by measurement in the harness).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmark.schema import REGIONS, SCALE_BASE
from repro.xmark.text import CITIES, COUNTRIES, FIRST_NAMES, LAST_NAMES, sentence

__all__ = ["XMarkConfig", "generate_xmark", "xmark_scale_for_bytes"]

#: Empirical bytes produced per unit of scale factor (measured; the harness
#: re-measures and corrects, so this only needs to be in the right range).
BYTES_PER_SCALE = 95_000_000


@dataclass(frozen=True)
class XMarkConfig:
    """Entity counts for one generated document."""

    items: int
    persons: int
    open_auctions: int
    closed_auctions: int
    categories: int
    catgraph_edges: int

    @classmethod
    def for_scale(cls, scale: float) -> "XMarkConfig":
        def count(base: int) -> int:
            return max(1, round(base * scale))

        return cls(
            items=count(SCALE_BASE["items"]),
            persons=count(SCALE_BASE["persons"]),
            open_auctions=count(SCALE_BASE["open_auctions"]),
            closed_auctions=count(SCALE_BASE["closed_auctions"]),
            categories=count(SCALE_BASE["categories"]),
            catgraph_edges=count(SCALE_BASE["catgraph_edges"]),
        )


def xmark_scale_for_bytes(target_bytes: int) -> float:
    """Initial scale factor estimate for a byte budget."""
    return max(target_bytes / BYTES_PER_SCALE, 1e-6)


def generate_xmark(scale: float, seed: int = 42) -> str:
    """Generate an XMark document of the given scale factor."""
    return _Generator(XMarkConfig.for_scale(scale), seed).generate()


class _Generator:
    def __init__(self, config: XMarkConfig, seed: int) -> None:
        self.config = config
        self.rng = random.Random(seed)
        self.parts: list[str] = []

    # -- small writer helpers ---------------------------------------------

    def open(self, tag: str) -> None:
        self.parts.append(f"<{tag}>")

    def close(self, tag: str) -> None:
        self.parts.append(f"</{tag}>")

    def leaf(self, tag: str, content: str) -> None:
        self.parts.append(f"<{tag}>{content}</{tag}>")

    # -- document ----------------------------------------------------------

    def generate(self) -> str:
        self.open("site")
        self.gen_regions()
        self.gen_categories()
        self.gen_catgraph()
        self.gen_people()
        self.gen_open_auctions()
        self.gen_closed_auctions()
        self.close("site")
        return "".join(self.parts)

    def gen_regions(self) -> None:
        # xmlgen's region shares; australia gets a small share (Q13 targets it).
        shares = {"africa": 0.10, "asia": 0.20, "australia": 0.10,
                  "europe": 0.30, "namerica": 0.20, "samerica": 0.10}
        self.open("regions")
        item_id = 0
        for region in REGIONS:
            self.open(region)
            count = max(1, round(self.config.items * shares[region]))
            for _ in range(count):
                self.gen_item(item_id, region)
                item_id += 1
            self.close(region)
        self.close("regions")
        self.total_items = item_id

    def gen_item(self, item_id: int, region: str) -> None:
        rng = self.rng
        self.open("item")
        self.leaf("id", f"item{item_id}")
        self.leaf("location", rng.choice(COUNTRIES))
        self.leaf("quantity", str(rng.randint(1, 10)))
        self.leaf("name", sentence(rng, 2, 4))
        self.open("payment")
        self.parts.append("Creditcard" if rng.random() < 0.6 else "Cash")
        self.close("payment")
        self.gen_description()
        self.leaf("shipping", "Will ship internationally" if rng.random() < 0.5
                  else "Buyer pays fixed shipping charges")
        for _ in range(rng.randint(1, 3)):
            self.open("incategory")
            self.leaf("category", f"category{rng.randrange(self.config.categories)}")
            self.close("incategory")
        self.open("mailbox")
        for _ in range(rng.randint(0, 2)):
            self.open("mail")
            self.leaf("from", self.person_name())
            self.leaf("to", self.person_name())
            self.leaf("date", self.date())
            self.leaf("text", sentence(rng, 6, 20))
            self.close("mail")
        self.close("mailbox")
        self.close("item")

    def gen_description(self) -> None:
        rng = self.rng
        self.open("description")
        if rng.random() < 0.7:
            self.leaf("text", sentence(rng, 8, 30))
        else:
            self.open("parlist")
            for _ in range(rng.randint(1, 3)):
                self.open("listitem")
                self.leaf("text", sentence(rng, 4, 12))
                self.close("listitem")
            self.close("parlist")
        self.close("description")

    def gen_categories(self) -> None:
        self.open("categories")
        for i in range(self.config.categories):
            self.open("category")
            self.leaf("id", f"category{i}")
            self.leaf("name", sentence(self.rng, 1, 3))
            self.gen_description()
            self.close("category")
        self.close("categories")

    def gen_catgraph(self) -> None:
        self.open("catgraph")
        for _ in range(self.config.catgraph_edges):
            self.open("edge")
            self.leaf("from", f"category{self.rng.randrange(self.config.categories)}")
            self.leaf("to", f"category{self.rng.randrange(self.config.categories)}")
            self.close("edge")
        self.close("catgraph")

    def gen_people(self) -> None:
        rng = self.rng
        self.open("people")
        for i in range(self.config.persons):
            self.open("person")
            self.leaf("id", f"person{i}")
            name = self.person_name()
            self.leaf("name", name)
            self.leaf(
                "emailaddress",
                "mailto:" + name.replace(" ", ".") + "@example.net",
            )
            if rng.random() < 0.5:
                self.leaf("phone", f"+{rng.randint(1, 99)} ({rng.randint(10, 999)}) "
                                   f"{rng.randint(1000000, 9999999)}")
            if rng.random() < 0.4:
                self.open("address")
                self.leaf("street", f"{rng.randint(1, 99)} {rng.choice(LAST_NAMES)} St")
                self.leaf("city", rng.choice(CITIES))
                self.leaf("country", rng.choice(COUNTRIES))
                self.leaf("zipcode", str(rng.randint(10000, 99999)))
                self.close("address")
            if rng.random() < 0.3:
                self.leaf("homepage", f"http://www.example.net/~person{i}")
            if rng.random() < 0.25:
                self.leaf("creditcard", " ".join(
                    str(rng.randint(1000, 9999)) for _ in range(4)))
            if rng.random() < 0.75:
                self.open("profile")
                if rng.random() < 0.8:  # some profiles lack income (Q20's <na>)
                    self.leaf("income", f"{rng.uniform(9000, 160000):.2f}")
                for _ in range(rng.randint(0, 3)):
                    self.open("interest")
                    self.leaf("category",
                              f"category{rng.randrange(self.config.categories)}")
                    self.close("interest")
                if rng.random() < 0.5:
                    self.leaf("education",
                              rng.choice(("High School", "College", "Graduate School")))
                if rng.random() < 0.8:
                    self.leaf("gender", rng.choice(("male", "female")))
                self.leaf("business", rng.choice(("Yes", "No")))
                if rng.random() < 0.6:
                    self.leaf("age", str(rng.randint(18, 90)))
                self.close("profile")
            if rng.random() < 0.3:
                self.open("watches")
                for _ in range(rng.randint(1, 4)):
                    self.open("watch")
                    self.leaf("open_auction",
                              f"open_auction{rng.randrange(self.config.open_auctions)}")
                    self.close("watch")
                self.close("watches")
            self.close("person")
        self.close("people")

    def gen_open_auctions(self) -> None:
        rng = self.rng
        self.open("open_auctions")
        for i in range(self.config.open_auctions):
            self.open("open_auction")
            self.leaf("id", f"open_auction{i}")
            initial = rng.uniform(1, 200)
            self.leaf("initial", f"{initial:.2f}")
            current = initial
            for _ in range(rng.randint(0, 4)):
                increase = rng.uniform(1, 30)
                current += increase
                self.open("bidder")
                self.leaf("date", self.date())
                self.leaf("time", self.time())
                self.open("personref")
                self.leaf("person", self.person_ref())
                self.close("personref")
                self.leaf("increase", f"{increase:.2f}")
                self.close("bidder")
            self.leaf("current", f"{current:.2f}")
            if rng.random() < 0.4:
                self.leaf("privacy", "Yes")
            self.open("itemref")
            self.leaf("item", f"item{rng.randrange(self.total_items)}")
            self.close("itemref")
            self.open("seller")
            self.leaf("person", self.person_ref())
            self.close("seller")
            self.gen_annotation()
            self.leaf("quantity", str(rng.randint(1, 10)))
            self.leaf("type", rng.choice(("Regular", "Featured")))
            self.open("interval")
            self.leaf("start", self.date())
            self.leaf("end", self.date())
            self.close("interval")
            self.close("open_auction")
        self.close("open_auctions")

    def gen_closed_auctions(self) -> None:
        rng = self.rng
        self.open("closed_auctions")
        for _ in range(self.config.closed_auctions):
            self.open("closed_auction")
            self.open("seller")
            self.leaf("person", self.person_ref())
            self.close("seller")
            self.open("buyer")
            self.leaf("person", self.person_ref())
            self.close("buyer")
            self.open("itemref")
            self.leaf("item", f"item{rng.randrange(self.total_items)}")
            self.close("itemref")
            self.leaf("price", f"{rng.uniform(5, 400):.2f}")
            self.leaf("date", self.date())
            self.leaf("quantity", str(rng.randint(1, 10)))
            self.leaf("type", rng.choice(("Regular", "Featured")))
            self.gen_annotation()
            self.close("closed_auction")
        self.close("closed_auctions")

    def gen_annotation(self) -> None:
        self.open("annotation")
        self.open("author")
        self.leaf("person", self.person_ref())
        self.close("author")
        self.gen_description()
        self.leaf("happiness", str(self.rng.randint(1, 10)))
        self.close("annotation")

    # -- shared helpers -----------------------------------------------------

    def person_name(self) -> str:
        return f"{self.rng.choice(FIRST_NAMES)} {self.rng.choice(LAST_NAMES)}"

    def person_ref(self) -> str:
        return f"person{self.rng.randrange(self.config.persons)}"

    def date(self) -> str:
        return (
            f"{self.rng.randint(1, 12):02d}/{self.rng.randint(1, 28):02d}/"
            f"{self.rng.randint(1998, 2006)}"
        )

    def time(self) -> str:
        return (
            f"{self.rng.randint(0, 23):02d}:{self.rng.randint(0, 59):02d}:"
            f"{self.rng.randint(0, 59):02d}"
        )
