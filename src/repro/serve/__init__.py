"""The network serving layer: ``gcx serve`` (see docs/SERVING.md).

The engine stack below this package is ready for real traffic — the
:class:`~repro.engine.pool.SessionPool` gives compile-once/run-many
evaluation to concurrent clients, and :class:`~repro.engine.session
.StreamingRun` produces output incrementally — but none of it listens on
a socket.  This package is the missing front-end: a stdlib-only asyncio
server speaking a line-delimited NDJSON protocol in which clients
register *standing queries* (compiled once, cached by normalized query
text), push documents inline or as chunked streams, and receive result
fragments the moment the evaluator decides them.

Layer map:

* :mod:`repro.serve.protocol` — the frame grammar: encoding, decoding,
  validation, and the structured error vocabulary;
* :mod:`repro.serve.stats` — :class:`ServerStats`, the request/session
  metrics (active connections, docs served, bytes in/out, a
  latency-to-first-byte histogram);
* :mod:`repro.serve.server` — :class:`QueryServer` itself: connection
  handling, per-connection backpressure, per-request timeouts, and
  graceful drain on SIGTERM;
* :mod:`repro.serve.testing` — the in-process harness
  (:class:`~repro.serve.testing.ServerFixture`,
  :class:`~repro.serve.testing.FaultyTransport`) used by the
  fault-injection and protocol-conformance suites and the serving bench.
"""

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_DOCUMENT_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_client_frame,
    encode_frame,
)
from repro.serve.server import (
    QueryServer,
    ServeConfig,
    normalize_query_key,
    run_server,
)
from repro.serve.stats import LatencyHistogram, ServerStats

__all__ = [
    "ERROR_CODES",
    "MAX_DOCUMENT_BYTES",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_client_frame",
    "encode_frame",
    "QueryServer",
    "ServeConfig",
    "normalize_query_key",
    "run_server",
    "LatencyHistogram",
    "ServerStats",
]
