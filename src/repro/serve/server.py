"""The asyncio streaming query server behind ``gcx serve``.

One :class:`QueryServer` owns a registry of *standing queries*: each
distinct query text (keyed by its whitespace-normalized form) gets one
:class:`~repro.engine.pool.SessionPool`, compiled exactly once and shared
by every connection that registers it.  Evaluation passes run on a small
thread pool — the engine is synchronous by design — and their output is
bridged back onto the event loop through a bounded queue, one fragment at
a time, so the paper's incremental-output property survives the network
hop: the first result frame leaves the socket while the document is still
being consumed.

Backpressure holds end to end, in both directions:

* *client -> server*: a connection handles one frame at a time and does
  not read from its socket while a pass is in flight, so TCP flow
  control pushes back on a fast producer; the stream reader's byte limit
  (``max_frame_bytes``) bounds what one unfinished line can buffer.
* *engine -> client*: the fragment bridge queue is bounded; when the
  client reads slowly, ``drain()`` slows the connection coroutine, the
  queue fills, and the evaluator thread blocks on its next emit — the
  pass advances at the pace of the slowest consumer instead of buffering
  the result.

Faults are structured, not fatal: malformed XML, a query that fails to
compile, an oversized document, or a per-request timeout each produce an
``error`` frame and leave the connection serving.  Every abort path runs
through :class:`~repro.engine.session.StreamingRun`'s release guard, so
a pass that dies — disconnect, timeout, poison document — returns its
buffer checkout to the pool exactly once (the RunOwner invariant the
fault-injection suite asserts).

Shutdown is a graceful drain: stop accepting, let in-flight passes
finish (bounded by ``drain_timeout``), tell idle connections ``bye``,
then close every pool — reusing ``SessionPool.close()`` semantics — and
verify nothing is left checked out via ``SessionPool.wait_idle``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterator

import hashlib

from repro.analysis.schema import Schema
from repro.engine.pool import SessionPool
from repro.engine.session import StreamingRun
from repro.serve.protocol import (
    E_BAD_FIELD,
    E_DOCUMENT,
    E_DRAINING,
    E_FRAME_TOO_LARGE,
    E_IDLE_TIMEOUT,
    E_INTERNAL,
    E_QUERY,
    E_STATE,
    E_TIMEOUT,
    E_TOO_LARGE,
    E_UNKNOWN_QUERY,
    MAX_DOCUMENT_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_client_frame,
    encode_frame,
)
from repro.serve.stats import ServerStats
from repro.xmlio.lexer import XMLSyntaxError, tokenize
from repro.xmlio.tokens import Token

__all__ = ["ServeConfig", "QueryServer", "normalize_query_key", "run_server"]


def normalize_query_key(query_text: str) -> str:
    """The standing-query cache key: query text with whitespace collapsed.

    Two registrations that differ only in layout (indentation, line
    breaks) share one compiled pool; anything semantic stays distinct.
    """
    return " ".join(query_text.split())


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`QueryServer` (defaults suit the tests/CLI)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (the fixture's mode); the bound port is
    #: readable as ``QueryServer.port`` after ``start()``.
    port: int = 0
    #: Evaluation threads — concurrent passes across all connections.
    eval_workers: int = 4
    #: Wall-clock ceiling per pass; ``None`` disables the timeout.
    request_timeout: float | None = 30.0
    #: Ceiling on completing one frame line (slow-loris guard); ``None``
    #: (the default) trusts clients to finish their lines eventually.
    idle_timeout: float | None = None
    max_frame_bytes: int = MAX_FRAME_BYTES
    max_document_bytes: int = MAX_DOCUMENT_BYTES
    #: Fragment-bridge queue depth per pass (engine -> client backpressure).
    bridge_depth: int = 64
    #: How long a graceful drain waits for in-flight passes before
    #: force-cancelling them.
    drain_timeout: float = 10.0
    #: Default schema for every standing query (``gcx serve --schema``).
    #: A register frame's own ``schema`` field (DTD text) overrides it
    #: per standing query.
    schema: Schema | None = None


class _PassCancelled(Exception):
    """Raised inside the evaluation thread when the consumer cancelled."""


class _PassFailed(Exception):
    """Wraps an engine-side exception reported through the bridge."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


class _EvalBridge:
    """The thread->loop fragment conduit of one pass.

    The evaluation thread calls :meth:`send`; items land in a *bounded*
    ``asyncio.Queue`` consumed by the connection coroutine.  A full queue
    blocks the evaluation thread (that is the backpressure), checking the
    cancel event every ``_POLL`` seconds so an abandoned consumer —
    disconnect, timeout, forced drain — unblocks the thread promptly and
    lets the pass die through the run's release guard.
    """

    _POLL = 0.1

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        queue: "asyncio.Queue[tuple[str, Any]]",
        cancel: threading.Event,
    ) -> None:
        self._loop = loop
        self._queue = queue
        self._cancel = cancel

    def check_cancelled(self) -> None:
        if self._cancel.is_set():
            raise _PassCancelled()

    def send(self, item: tuple[str, Any]) -> None:
        self.check_cancelled()
        future = asyncio.run_coroutine_threadsafe(
            self._queue.put(item), self._loop
        )
        while True:
            try:
                future.result(self._POLL)
                return
            except concurrent.futures.TimeoutError:
                if self._cancel.is_set():
                    future.cancel()
                    raise _PassCancelled()
            except concurrent.futures.CancelledError:
                raise _PassCancelled()

    def report_error(self, exc: BaseException) -> None:
        """Best effort: a dead consumer must not mask the original error."""
        with contextlib.suppress(Exception):
            self.send(("error", exc))


def _run_pass(
    pool: SessionPool, document: "str | bytes", bridge: _EvalBridge
) -> None:
    """One evaluation pass, executed on an evaluation thread.

    Every exit path settles the pool checkout exactly once: exhaustion
    releases it through the run's normal completion, and every
    abort (cancel, malformed input, engine error) goes through
    ``StreamingRun.close()`` whose release guard discards it.
    """

    def guarded_tokens() -> Iterator[Token]:
        # The cancel check rides the input stream, so a pass that emits
        # no output for a long stretch (no matches yet) still notices a
        # timeout or disconnect within one token.
        for token in tokenize(document):
            bridge.check_cancelled()
            yield token

    stream: StreamingRun | None = None
    try:
        stream = pool.run_streaming(guarded_tokens())
        for fragment in stream.serialized():
            # The tokens-consumed count rides along as the fragment's
            # arrival offset: the result frame's "at" field, which is how
            # clients observe earliness (docs/EARLINESS.md) on the wire.
            bridge.send(("frag", (fragment, stream.tokens_consumed)))
        bridge.send(("done", stream.result))
    except _PassCancelled:
        if stream is not None:
            stream.close()
    except BaseException as exc:
        if stream is not None:
            stream.close()
        bridge.report_error(exc)


class _Connection:
    """One client connection: frame loop, upload state, pass execution."""

    def __init__(
        self,
        server: "QueryServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.task: "asyncio.Task | None" = None
        self._queries: dict[str, SessionPool] = {}
        # Chunked-upload state: None when idle, (alias, parts) during an
        # upload.  _doc_bytes enforces max_document_bytes incrementally so
        # an oversized stream is rejected as soon as it crosses the line.
        # Chunk payloads are UTF-8-encoded once at receipt and
        # accumulated as bytes: the joined upload feeds the bytes-domain
        # lexer directly, so chunked documents are never re-encoded.
        self._upload: tuple[str, list[bytes]] | None = None
        self._upload_bytes = 0
        self._closing = False
        # The in-flight pass's cancel event, if any — the force-cancel
        # hook a timed-out drain uses to kill stragglers.
        self._active_cancel: threading.Event | None = None

    # -- outbound -------------------------------------------------------

    async def _send(self, frame: dict[str, Any]) -> None:
        data = encode_frame(frame)
        self.writer.write(data)
        self.server.stats.frame_out(len(data))
        await self.writer.drain()

    async def _send_error(self, error: ProtocolError) -> None:
        await self._send(error.frame())

    # -- inbound --------------------------------------------------------

    async def _read_line(self) -> bytes | None:
        """One frame line, or ``None`` when the connection is over.

        Races the read against the server's drain event (an idle
        connection must notice shutdown without a frame arriving) and,
        when configured, the idle timeout — which bounds the time to
        *complete* a frame once its first byte has arrived, so a
        slow-loris client dribbling bytes forever is cut off while a
        standing-query client sitting quietly between documents is not.
        """
        read = asyncio.ensure_future(self.reader.readline())
        drain = asyncio.ensure_future(self.server.drain_event.wait())
        try:
            while True:
                done, _pending = await asyncio.wait(
                    {read, drain},
                    timeout=self.server.config.idle_timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if done:
                    break
                # Window expired.  A quiet connection (no partial line
                # buffered) is merely idle — keep waiting; buffered bytes
                # with no newline in sight is the slow loris.
                if self.reader._buffer:  # noqa: SLF001 - no public probe
                    await self._best_effort_error(
                        ProtocolError(
                            E_IDLE_TIMEOUT,
                            "frame not completed within "
                            f"{self.server.config.idle_timeout}s",
                            fatal=True,
                        )
                    )
                    return None
            if read in done:
                try:
                    line = read.result()
                except ValueError:
                    # The stream limit tripped mid-line; framing is lost
                    # for good, so this one is fatal.
                    await self._best_effort_error(
                        ProtocolError(
                            E_FRAME_TOO_LARGE,
                            "frame exceeds "
                            f"{self.server.config.max_frame_bytes} bytes",
                            fatal=True,
                        )
                    )
                    return None
                except OSError:
                    return None  # connection reset mid-read
                if not line:
                    return None  # clean EOF
                if not line.endswith(b"\n"):
                    # EOF mid-line: a truncated final frame.  The peer is
                    # gone; there is nobody to answer.
                    return None
                return line
            assert drain in done
            await self._best_effort_bye("draining")
            return None
        finally:
            for task in (read, drain):
                task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await read

    async def _best_effort_error(self, error: ProtocolError) -> None:
        with contextlib.suppress(ConnectionError, OSError):
            await self._send_error(error)

    async def _best_effort_bye(self, reason: str) -> None:
        with contextlib.suppress(ConnectionError, OSError):
            await self._send({"type": "bye", "reason": reason})

    # -- the frame loop --------------------------------------------------

    async def run(self) -> None:
        while not self._closing:
            line = await self._read_line()
            if line is None:
                break
            self.server.stats.frame_in(len(line))
            try:
                frame = decode_client_frame(line)
            except ProtocolError as error:
                await self._best_effort_error(error)
                if error.fatal:
                    break
                continue
            try:
                await self._dispatch(frame)
            except ProtocolError as error:
                await self._send_error(error)
                if error.fatal:
                    break
            if self.server.draining and not self._closing:
                await self._best_effort_bye("draining")
                break

    async def _dispatch(self, frame: dict[str, Any]) -> None:
        op = frame["op"]
        if op == "ping":
            await self._send({"type": "pong"})
        elif op == "stats":
            await self._send(
                {"type": "stats", "stats": self.server.stats.snapshot()}
            )
        elif op == "quit":
            self._closing = True
            await self._best_effort_bye("quit")
        elif op == "register":
            await self._op_register(frame)
        elif op == "unregister":
            await self._op_unregister(frame)
        elif op == "eval":
            self._require_idle(op)
            # Encode once: the same bytes serve the size check and the
            # lexer (which scans raw UTF-8 end to end).
            document = frame["doc"].encode("utf-8")
            self._check_document_size(len(document))
            await self._evaluate(frame["id"], self._pool_for(frame["id"]), document)
        elif op == "begin":
            self._require_idle(op)
            self._pool_for(frame["id"])  # validate now, not at end
            self._upload = (frame["id"], [])
            self._upload_bytes = 0
        elif op == "chunk":
            if self._upload is None:
                raise ProtocolError(E_STATE, "chunk outside begin/end")
            # A JSON string boundary can never split a code point, so
            # encoding chunk by chunk concatenates to the same UTF-8 as
            # encoding the joined document once.
            data = frame["data"].encode("utf-8")
            self._upload_bytes += len(data)
            try:
                self._check_document_size(self._upload_bytes)
            except ProtocolError:
                self._reset_upload()
                raise
            self._upload[1].append(data)
        elif op == "end":
            if self._upload is None:
                raise ProtocolError(E_STATE, "end outside begin/end")
            alias, parts = self._upload
            self._reset_upload()
            await self._evaluate(alias, self._pool_for(alias), b"".join(parts))
        elif op == "cancel":
            self._reset_upload()
            await self._send({"type": "cancelled"})
        else:  # pragma: no cover - decode_client_frame guarantees the op
            raise ProtocolError(E_BAD_FIELD, f"unhandled op {op!r}")

    # -- op helpers ------------------------------------------------------

    def _require_idle(self, op: str) -> None:
        if self._upload is not None:
            raise ProtocolError(
                E_STATE,
                f"op {op!r} is illegal during a chunked upload "
                "(finish with 'end' or abort with 'cancel')",
            )

    def _reset_upload(self) -> None:
        self._upload = None
        self._upload_bytes = 0

    def _check_document_size(self, nbytes: int) -> None:
        limit = self.server.config.max_document_bytes
        if nbytes > limit:
            raise ProtocolError(
                E_TOO_LARGE,
                f"document of {nbytes} bytes exceeds the limit of {limit}",
            )

    def _pool_for(self, alias: str) -> SessionPool:
        pool = self._queries.get(alias)
        if pool is None:
            raise ProtocolError(
                E_UNKNOWN_QUERY,
                f"no query registered as {alias!r} on this connection",
            )
        return pool

    async def _op_register(self, frame: dict[str, Any]) -> None:
        self._require_idle("register")
        alias, query = frame["id"], frame["query"]
        schema_text = frame.get("schema")
        if schema_text is not None and not isinstance(schema_text, str):
            raise ProtocolError(
                E_BAD_FIELD,
                "op 'register' field 'schema' must be a string (DTD text)",
            )
        pool, cached = self.server.get_pool(query, schema_text=schema_text)
        self._queries[alias] = pool
        self.server.stats.query_registered(cached=cached)
        await self._send({"type": "registered", "id": alias, "cached": cached})

    async def _op_unregister(self, frame: dict[str, Any]) -> None:
        alias = frame["id"]
        if self._queries.pop(alias, None) is None:
            raise ProtocolError(
                E_UNKNOWN_QUERY,
                f"no query registered as {alias!r} on this connection",
            )
        await self._send({"type": "unregistered", "id": alias})

    # -- pass execution --------------------------------------------------

    async def _evaluate(
        self, alias: str, pool: SessionPool, document: "str | bytes"
    ) -> None:
        """Run one pass, forwarding fragments as sequenced result frames.

        The connection does not return to its read loop until the pass is
        settled — that is the read-pause half of the backpressure model.
        """
        config = self.server.config
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[tuple[str, Any]]" = asyncio.Queue(
            maxsize=config.bridge_depth
        )
        cancel = threading.Event()
        bridge = _EvalBridge(loop, queue, cancel)
        self._active_cancel = cancel
        started = time.perf_counter()
        deadline = (
            started + config.request_timeout
            if config.request_timeout is not None
            else None
        )
        future = loop.run_in_executor(
            self.server.executor, _run_pass, pool, document, bridge
        )
        seq = 0
        ok = False
        try:
            while True:
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise asyncio.TimeoutError
                    item = await asyncio.wait_for(queue.get(), remaining)
                else:
                    item = await queue.get()
                kind, payload = item
                if kind == "frag":
                    fragment, at = payload
                    seq += 1
                    if seq == 1:
                        self.server.stats.observe_ttfb(
                            time.perf_counter() - started
                        )
                    await self._send(
                        {
                            "type": "result",
                            "id": alias,
                            "seq": seq,
                            "fragment": fragment,
                            "at": at,
                        }
                    )
                elif kind == "done":
                    result = payload
                    await self._send(
                        {
                            "type": "done",
                            "id": alias,
                            "fragments": seq,
                            "hwm_nodes": result.stats.hwm_nodes,
                            "hwm_bytes": result.stats.hwm_bytes_modelled,
                            "tokens_read": result.stats.tokens_read,
                            "elapsed_ms": round(
                                (time.perf_counter() - started) * 1_000.0, 3
                            ),
                        }
                    )
                    ok = True
                    return
                else:  # "error"
                    raise _PassFailed(payload)
        except asyncio.TimeoutError:
            cancel.set()
            await self._best_effort_error(
                ProtocolError(
                    E_TIMEOUT,
                    f"pass exceeded the request timeout of "
                    f"{config.request_timeout}s",
                )
            )
        except _PassFailed as failure:
            cause = failure.cause
            code = E_DOCUMENT if isinstance(cause, XMLSyntaxError) else E_INTERNAL
            await self._best_effort_error(
                ProtocolError(code, f"{type(cause).__name__}: {cause}")
            )
        finally:
            self._active_cancel = None
            self.server.stats.pass_finished(ok=ok)
            if not future.done():
                cancel.set()
            # Unblock a producer stuck on the full queue, then wait for
            # the thread: the pass MUST be settled (checkout released)
            # before this connection reads its next frame.
            while not future.done():
                while True:
                    try:
                        queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                await asyncio.sleep(0.005)
            with contextlib.suppress(Exception):
                await future

    def force_cancel(self) -> None:
        """Kill the in-flight pass, if any (timed-out drain only)."""
        cancel = self._active_cancel
        if cancel is not None:
            cancel.set()


class QueryServer:
    """The ``gcx serve`` front-end: standing queries over NDJSON frames.

    Lifecycle: construct with a :class:`ServeConfig`, ``await start()``
    inside a running event loop, then either let connections arrive or
    ``await shutdown()`` for a graceful drain.  The CLI wraps this in
    :func:`run_server`, which adds signal handling.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.stats = ServerStats()
        self._pools: dict[str, SessionPool] = {}
        self._connections: set[_Connection] = set()
        self._server: asyncio.AbstractServer | None = None
        self._bound_port = 0
        self.executor: ThreadPoolExecutor | None = None
        self.drain_event: asyncio.Event | None = None
        self.draining = False
        self._shutdown_task: "asyncio.Task | None" = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        assert self._server is None, "start() called twice"
        self.drain_event = asyncio.Event()
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.eval_workers,
            thread_name_prefix="gcx-serve",
        )
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_frame_bytes,
        )
        # Remember the resolved port: the listener socket (and with it
        # getsockname) disappears once the drain closes the server, but
        # late callers still deserve the address for their error paths.
        self._bound_port = self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after ``start()``)."""
        assert self._server is not None, "server not started"
        return self._bound_port

    async def shutdown(self, drain_timeout: float | None = None) -> None:
        """Graceful drain: finish in-flight passes, then close every pool.

        Reuses ``SessionPool.close()`` semantics per standing query, and
        settles outstanding checkouts through ``SessionPool.wait_idle``
        (run off-loop — it blocks) before closing.  Idempotent: every
        call awaits the one real drain, so no caller can observe a
        "shut down" server whose drain is still in flight.
        """
        if self._server is None:
            return
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(
                self._shutdown(drain_timeout)
            )
        # Shield: cancelling one impatient awaiter must not abort the
        # drain itself for everyone else.
        await asyncio.shield(self._shutdown_task)

    async def _shutdown(self, drain_timeout: float | None) -> None:
        timeout = (
            drain_timeout if drain_timeout is not None else self.config.drain_timeout
        )
        self.draining = True
        self._server.close()
        assert self.drain_event is not None
        self.drain_event.set()
        tasks = {
            conn.task for conn in list(self._connections) if conn.task is not None
        }
        if tasks:
            _done, pending = await asyncio.wait(tasks, timeout=timeout)
            if pending:
                # Drain window exhausted: force-cancel the stragglers'
                # passes (their release guards still settle the pool
                # checkouts) and give them a moment to unwind.
                for conn in list(self._connections):
                    conn.force_cancel()
                _done, pending = await asyncio.wait(pending, timeout=2.0)
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
        await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        for pool in self._pools.values():
            await loop.run_in_executor(None, partial(pool.wait_idle, 2.0))
            pool.close()
        if self.executor is not None:
            self.executor.shutdown(wait=False)

    # -- standing queries -----------------------------------------------

    def get_pool(
        self, query_text: str, *, schema_text: str | None = None
    ) -> tuple[SessionPool, bool]:
        """The standing-query pool for ``query_text`` (compiling on miss).

        ``schema_text`` is the register frame's optional per-query DTD; it
        overrides the server-wide default (``ServeConfig.schema``).  The
        cache key includes a fingerprint of the effective schema, so the
        same query registered with and without a schema gets two distinct
        pools (their compiled artifacts differ).

        Returns ``(pool, cached)``; raises :class:`ProtocolError` with
        code ``query-error`` when the query or the DTD does not compile
        (parse error, unsupported construct) — non-fatal, the connection
        keeps serving.
        """
        key = normalize_query_key(query_text)
        if schema_text is not None:
            digest = hashlib.sha256(
                " ".join(schema_text.split()).encode("utf-8")
            ).hexdigest()[:16]
            key = f"{key}\x00dtd:{digest}"
        elif self.config.schema is not None:
            key = f"{key}\x00dtd:default"
        pool = self._pools.get(key)
        if pool is not None:
            return pool, True
        try:
            schema = (
                Schema.from_dtd_text(schema_text)
                if schema_text is not None
                else self.config.schema
            )
            pool = SessionPool(
                query_text,
                max_workers=self.config.eval_workers,
                schema=schema,
            )
        except Exception as error:
            raise ProtocolError(
                E_QUERY, f"{type(error).__name__}: {error}"
            ) from error
        self._pools[key] = pool
        return pool, False

    @property
    def standing_queries(self) -> int:
        return len(self._pools)

    def pools(self) -> list[SessionPool]:
        """The standing-query pools (test/bench introspection)."""
        return list(self._pools.values())

    def outstanding_checkouts(self) -> int:
        """Buffer checkouts currently held across all standing queries.

        Zero whenever no pass is in flight — the invariant every fault
        path must restore (each ``stats`` read also reaps abandoned
        runs, so a just-released checkout settles here).
        """
        return sum(pool.stats.outstanding_checkouts for pool in self.pools())

    # -- connections ----------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self, reader, writer)
        if self.draining:
            with contextlib.suppress(ConnectionError, OSError):
                conn_bye = ProtocolError(
                    E_DRAINING, "server is draining", fatal=True
                )
                await conn._send_error(conn_bye)
            writer.close()
            return
        conn.task = asyncio.current_task()
        self._connections.add(conn)
        self.stats.connection_opened()
        try:
            await conn.run()
        except (ConnectionError, OSError):
            pass  # peer vanished mid-frame; nothing left to say
        finally:
            self._connections.discard(conn)
            self.stats.connection_closed()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()


def run_server(
    config: ServeConfig | None = None,
    *,
    on_ready: Callable[[QueryServer, asyncio.Event, asyncio.AbstractEventLoop], None]
    | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Run a :class:`QueryServer` until SIGTERM/SIGINT, then drain.

    The blocking entry point behind ``gcx serve``.  ``on_ready`` is
    called once the socket is bound with ``(server, stop_event, loop)``
    — the test suite uses it to learn the ephemeral port and to trigger
    shutdown programmatically (``loop.call_soon_threadsafe(stop.set)``).
    Returns the process exit status (0 on a clean drain).
    """
    return asyncio.run(_serve_main(config or ServeConfig(), on_ready, log))


async def _serve_main(
    config: ServeConfig,
    on_ready: Callable[..., None] | None,
    log: Callable[[str], None] | None,
) -> int:
    server = QueryServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            # Non-main thread or a platform without signal support: the
            # embedder (tests, another loop) must trigger ``stop`` itself.
            pass
    if log is not None:
        log(f"gcx serve: listening on {server.host}:{server.port}")
    if on_ready is not None:
        on_ready(server, stop, loop)
    await stop.wait()
    if log is not None:
        log("gcx serve: draining...")
    await server.shutdown()
    if log is not None:
        log(f"gcx serve: drained; {server.stats.summary()}")
    return 0
