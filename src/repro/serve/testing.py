"""In-process harness for the serving layer's fault and conformance suites.

:class:`ServerFixture` boots a real :class:`~repro.serve.server
.QueryServer` on an ephemeral port inside a background thread running its
own event loop — real sockets, real framing, real backpressure, no
subprocess.  :class:`ScriptClient` is a deliberately *synchronous* client
(plain socket + ``makefile``): scripted sessions read like the protocol
transcript they test, and a blocking read with a timeout doubles as the
deadlock detector.  :class:`FaultyTransport` injects the faults the
server must survive: hard disconnects (RST, not FIN), slow-loris writes,
and truncated frames.

The harness is shipped inside the package (not the test tree) because
the serving bench builds on the same fixture.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import socket
import struct
import threading
import time
from typing import Any, Coroutine, Iterator

from repro.serve.server import QueryServer, ServeConfig

__all__ = ["FaultyTransport", "ScriptClient", "ServerFixture"]


class FaultyTransport:
    """Fault injection on one client socket.

    Wraps the raw socket of a :class:`ScriptClient`; each method is one
    fault from the suite's inventory.  The server must answer every one
    of them with the same postcondition: no leaked checkout, no wedged
    connection slot, the remaining clients unaffected.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def abort(self) -> None:
        """Kill the connection *hard*: RST, not an orderly FIN.

        SO_LINGER with a zero timeout makes ``close()`` discard unsent
        data and send a reset — the closest a test can get to a client
        process dying mid-stream.
        """
        self._sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        self._sock.close()

    def send_slow(
        self, data: bytes, *, chunk_size: int = 1, delay: float = 0.02
    ) -> None:
        """Dribble ``data`` out ``chunk_size`` bytes at a time (slow loris).

        Stops quietly if the server cuts the connection mid-dribble —
        that is the slow-loris defense working, and the test reads the
        verdict (the error frame) from its own side of the socket.
        """
        for start in range(0, len(data), chunk_size):
            try:
                self._sock.sendall(data[start : start + chunk_size])
            except OSError:
                return
            time.sleep(delay)

    def send_truncated(self, data: bytes, *, keep: int) -> None:
        """Send only the first ``keep`` bytes of ``data``, then FIN.

        The server sees a line that ends in EOF instead of a newline — a
        frame cut off mid-flight.
        """
        self._sock.sendall(data[:keep])
        self._sock.shutdown(socket.SHUT_WR)


class ScriptClient:
    """A synchronous scripted client for one server connection."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        # TCP_NODELAY keeps scripted request/response latencies honest
        # (Nagle would serialize the one-frame-at-a-time scripts).
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self.sock.makefile("rb")
        self.faults = FaultyTransport(self.sock)
        #: Per-result-frame arrival offsets (tokens consumed at emit time)
        #: of the most recent :meth:`collect_pass`; see that method.
        self.frame_offsets: list[int | None] = []

    # -- wire ------------------------------------------------------------

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def send_frame(self, frame: dict[str, Any]) -> None:
        self.send_raw(
            (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")
        )

    def recv_frame(self) -> dict[str, Any] | None:
        """The next server frame, or ``None`` on EOF.

        The socket timeout set at connect applies: a server that stops
        answering turns into ``socket.timeout`` here, which is exactly
        how the suites detect a deadlock instead of hanging forever.
        """
        line = self._reader.readline()
        if not line:
            return None
        return json.loads(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "ScriptClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- protocol helpers -------------------------------------------------

    def register(
        self, alias: str, query: str, *, schema: str | None = None
    ) -> dict[str, Any]:
        frame: dict[str, Any] = {"op": "register", "id": alias, "query": query}
        if schema is not None:
            frame["schema"] = schema  # DTD text, per the frame grammar
        self.send_frame(frame)
        reply = self.recv_frame()
        assert reply is not None, "connection closed during register"
        return reply

    def eval_collect(
        self, alias: str, document: str
    ) -> tuple[list[str], dict[str, Any]]:
        """Evaluate ``document`` and collect the whole pass.

        Returns ``(fragments, final_frame)`` where the final frame is the
        ``done`` on success or the ``error`` that ended the pass.
        """
        self.send_frame({"op": "eval", "id": alias, "doc": document})
        return self.collect_pass()

    def collect_pass(self) -> tuple[list[str], dict[str, Any]]:
        """Collect result frames until the pass settles (done/error).

        The emission-order oracle: each result frame's ``at`` field (input
        tokens consumed when the fragment was emitted) is recorded in
        :attr:`frame_offsets`, parallel to the returned fragments, so
        tests can assert that output left before end-of-document.
        """
        fragments: list[str] = []
        self.frame_offsets: list[int | None] = []
        while True:
            frame = self.recv_frame()
            assert frame is not None, "connection closed mid-pass"
            if frame["type"] == "result":
                fragments.append(frame["fragment"])
                self.frame_offsets.append(frame.get("at"))
                continue
            assert frame["type"] in ("done", "error"), frame
            return fragments, frame

    def upload(self, alias: str, chunks: Iterator[str] | list[str]) -> None:
        """Stream a document as a begin/chunk*/end sequence (no reads)."""
        self.send_frame({"op": "begin", "id": alias})
        for chunk in chunks:
            self.send_frame({"op": "chunk", "data": chunk})
        self.send_frame({"op": "end"})

    def ping(self) -> dict[str, Any]:
        self.send_frame({"op": "ping"})
        reply = self.recv_frame()
        assert reply is not None, "connection closed during ping"
        return reply

    def stats(self) -> dict[str, Any]:
        self.send_frame({"op": "stats"})
        reply = self.recv_frame()
        assert reply is not None, "connection closed during stats"
        assert reply["type"] == "stats", reply
        return reply["stats"]

    def quit(self) -> None:
        self.send_frame({"op": "quit"})


class ServerFixture:
    """A live server on an ephemeral port, inside this process.

    The event loop runs on a daemon thread; the test thread talks to it
    over real sockets (via :meth:`client`) and, for introspection, via
    :meth:`submit`, which schedules a coroutine onto the server loop.
    Use as a context manager::

        with ServerFixture(request_timeout=5.0) as fixture:
            with fixture.client() as client:
                client.register("q", "<r>{/a/b}</r>")
                ...
            fixture.assert_clean()
    """

    def __init__(self, **config_overrides: Any) -> None:
        config_overrides.setdefault("port", 0)
        self.config = ServeConfig(**config_overrides)
        self.server = QueryServer(self.config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="gcx-serve-fixture", daemon=True
        )
        self._started = threading.Event()
        self._stopped = False

    # -- lifecycle ------------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()
        # run_forever returned: drain any callbacks scheduled during stop.
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def start(self) -> "ServerFixture":
        self._thread.start()
        if not self._started.wait(10.0):  # pragma: no cover - start failure
            raise RuntimeError("server fixture failed to start within 10s")
        return self

    def stop(self, *, drain_timeout: float | None = None) -> None:
        """Gracefully drain the server and stop the loop thread."""
        if self._stopped:
            return
        self._stopped = True
        try:
            self.submit(self.server.shutdown(drain_timeout)).result(30.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10.0)

    def __enter__(self) -> "ServerFixture":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- access ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def submit(self, coro: Coroutine) -> "concurrent.futures.Future":
        """Schedule ``coro`` on the server's loop; returns its future."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def client(self, *, timeout: float = 10.0) -> ScriptClient:
        return ScriptClient(self.host, self.port, timeout=timeout)

    # -- invariants ------------------------------------------------------

    def outstanding_checkouts(self) -> int:
        """Buffer checkouts currently held across all standing queries."""
        return self.server.outstanding_checkouts()

    def active_runs(self) -> int:
        return sum(pool.stats.active_runs for pool in self.server.pools())

    def assert_clean(self, *, timeout: float = 5.0) -> None:
        """Assert the RunOwner invariant: every checkout was released.

        Polls because release is asynchronous to the client's last read:
        a disconnected pass unwinds on an evaluator thread after the
        socket is gone.  Converges in milliseconds; ``timeout`` is the
        deadlock verdict.
        """
        deadline = time.monotonic() + timeout
        while True:
            checkouts = self.outstanding_checkouts()
            active = self.active_runs()
            if checkouts == 0 and active == 0:
                return
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"pool not clean after {timeout}s: "
                    f"{checkouts} outstanding checkout(s), "
                    f"{active} active run(s)"
                )
            time.sleep(0.01)
