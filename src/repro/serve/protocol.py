"""Frame grammar of the ``gcx serve`` wire protocol (docs/SERVING.md).

The protocol is deliberately minimal: every frame is one line of JSON
(UTF-8, ``\\n``-terminated, no embedded newlines — JSON string escaping
guarantees that).  Line framing keeps the server's input buffering
bounded and recoverable: a malformed frame poisons exactly one line, and
the stream resynchronizes at the next newline, which is what lets a
connection survive a bad document or a garbled frame.

Client frames carry an ``op`` field::

    {"op": "register", "id": "q1", "query": "<o>{...}</o>"}
    {"op": "register", "id": "q2", "query": "...", "schema": "<!ELEMENT ...>"}
    {"op": "unregister", "id": "q1"}
    {"op": "eval", "id": "q1", "doc": "<site>...</site>"}
    {"op": "begin", "id": "q1"}          start a chunked document upload
    {"op": "chunk", "data": "<site>"}    any number of these
    {"op": "end"}                        upload complete -> evaluate
    {"op": "cancel"}                     abort an in-progress upload
    {"op": "ping"} | {"op": "stats"} | {"op": "quit"}

``register`` takes an optional ``schema`` field: DTD text enabling the
schema-constraint pass (zero-buffer proofs) for that standing query.
Queries registered with different schemas get distinct compiled pools;
a server started with ``--schema`` applies its DTD to every standing
query that does not carry its own.

Document payloads (``doc`` and ``chunk`` ``data``) arrive as JSON
strings but are UTF-8-encoded exactly once at receipt and stay ``bytes``
from there on: size limits count encoded bytes, chunked uploads
accumulate and join byte parts, and the joined document feeds the
bytes-domain lexer directly.  A JSON string boundary can never split a
code point, so per-chunk encoding concatenates to the same byte stream
as encoding the whole document at once.

Server frames carry a ``type`` field: ``registered``, ``unregistered``,
``result`` (one output fragment, sequenced per pass), ``done`` (end of a
pass, with its run statistics), ``error`` (structured, with a stable
``code`` and a ``fatal`` flag), ``pong``, ``stats``, ``cancelled`` and
``bye``.  The full grammar, with the backpressure and drain semantics,
is specified in docs/SERVING.md.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_DOCUMENT_BYTES",
    "CLIENT_OPS",
    "ERROR_CODES",
    "E_BAD_FRAME",
    "E_BAD_FIELD",
    "E_UNKNOWN_OP",
    "E_UNKNOWN_QUERY",
    "E_QUERY",
    "E_DOCUMENT",
    "E_TOO_LARGE",
    "E_FRAME_TOO_LARGE",
    "E_TIMEOUT",
    "E_IDLE_TIMEOUT",
    "E_STATE",
    "E_INTERNAL",
    "E_DRAINING",
    "ProtocolError",
    "encode_frame",
    "decode_client_frame",
]

#: Ceiling on one wire frame (one line).  Bounds the per-connection input
#: buffer: the asyncio stream reader is created with this limit, so a
#: client that never sends a newline cannot grow server memory past it.
MAX_FRAME_BYTES = 1_048_576

#: Default ceiling on one document (inline or accumulated over chunks).
MAX_DOCUMENT_BYTES = 8_388_608

# -- structured error codes (stable API, asserted by the test suite) ----
E_BAD_FRAME = "bad-frame"  # not JSON / not an object
E_BAD_FIELD = "bad-field"  # missing or wrongly typed field
E_UNKNOWN_OP = "unknown-op"
E_UNKNOWN_QUERY = "unknown-query"  # eval/begin against an unregistered id
E_QUERY = "query-error"  # query failed to compile
E_DOCUMENT = "document-error"  # malformed XML mid-pass
E_TOO_LARGE = "too-large"  # document exceeded max_document_bytes
E_FRAME_TOO_LARGE = "frame-too-large"  # line exceeded max_frame_bytes
E_TIMEOUT = "timeout"  # pass exceeded the per-request timeout
E_IDLE_TIMEOUT = "idle-timeout"  # frame not completed in time (slow loris)
E_STATE = "protocol-state"  # op illegal in the current state
E_INTERNAL = "internal-error"
E_DRAINING = "draining"  # server is shutting down

ERROR_CODES = frozenset(
    {
        E_BAD_FRAME,
        E_BAD_FIELD,
        E_UNKNOWN_OP,
        E_UNKNOWN_QUERY,
        E_QUERY,
        E_DOCUMENT,
        E_TOO_LARGE,
        E_FRAME_TOO_LARGE,
        E_TIMEOUT,
        E_IDLE_TIMEOUT,
        E_STATE,
        E_INTERNAL,
        E_DRAINING,
    }
)

#: Required string fields per client op (beyond ``op`` itself).
CLIENT_OPS: dict[str, tuple[str, ...]] = {
    "register": ("id", "query"),
    "unregister": ("id",),
    "eval": ("id", "doc"),
    "begin": ("id",),
    "chunk": ("data",),
    "end": (),
    "cancel": (),
    "ping": (),
    "stats": (),
    "quit": (),
}


class ProtocolError(ValueError):
    """A protocol violation, rendered to the client as an error frame.

    ``code`` is one of :data:`ERROR_CODES` (stable, machine-matchable);
    ``fatal`` marks violations after which the connection cannot continue
    (e.g. an over-limit frame leaves the line framing unrecoverable).
    Non-fatal errors are answered with an error frame and the connection
    keeps serving — the conformance suite's survival guarantee.
    """

    def __init__(self, code: str, message: str, *, fatal: bool = False) -> None:
        super().__init__(message)
        assert code in ERROR_CODES, code
        self.code = code
        self.fatal = fatal

    def frame(self) -> dict[str, Any]:
        """The server error frame announcing this violation."""
        return {
            "type": "error",
            "code": self.code,
            "message": str(self),
            "fatal": self.fatal,
        }


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame to its wire form (compact JSON + newline).

    ``ensure_ascii`` stays on: every emitted byte is printable ASCII, so
    fragments survive any transport or log intact and the newline framing
    can never be confused by multi-byte sequences.
    """
    return (
        json.dumps(frame, separators=(",", ":"), ensure_ascii=True) + "\n"
    ).encode("ascii")


def decode_client_frame(line: bytes) -> dict[str, Any]:
    """Parse and validate one client line into a frame dict.

    Raises :class:`ProtocolError` (always non-fatal: line framing is
    intact, the connection can keep going) when the line is not a JSON
    object, names no/an unknown ``op``, or misses a required field.
    """
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(E_BAD_FRAME, f"frame is not valid JSON: {error}")
    if not isinstance(frame, dict):
        raise ProtocolError(
            E_BAD_FRAME, f"frame must be a JSON object, got {type(frame).__name__}"
        )
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError(E_BAD_FIELD, "frame is missing the string field 'op'")
    required = CLIENT_OPS.get(op)
    if required is None:
        known = ", ".join(sorted(CLIENT_OPS))
        raise ProtocolError(E_UNKNOWN_OP, f"unknown op {op!r} (known: {known})")
    for field in required:
        if not isinstance(frame.get(field), str):
            raise ProtocolError(
                E_BAD_FIELD, f"op {op!r} requires the string field {field!r}"
            )
    return frame
