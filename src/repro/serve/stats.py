"""Request/session metrics for the serving layer.

:class:`ServerStats` is the server-wide counter block: connections,
passes, wire bytes, query-cache behaviour, and a latency-to-first-byte
histogram.  All mutation happens on the event-loop thread (the
connection coroutines), so no lock is needed; cross-thread readers (the
test fixture, the bench harness) only read integers, which is safe under
the GIL — a snapshot may be an instant stale, never torn per-field.

:class:`LatencyHistogram` keeps log-spaced buckets rather than raw
samples so a server that has answered millions of requests still holds
O(1) metric state — the same bounded-memory discipline the engine
applies to buffers, applied to its own telemetry.
"""

from __future__ import annotations

from typing import Any

__all__ = ["LatencyHistogram", "ServerStats"]


class LatencyHistogram:
    """Log-spaced latency histogram with percentile estimates.

    ``observe_ms`` drops a sample into its bucket; ``percentile`` answers
    with the upper bound of the bucket holding that rank (the overflow
    bucket answers with the maximum ever seen).  The bounds span 0.1 ms
    to 10 s, which covers everything from a warm point lookup to a pass
    over a document three orders of magnitude past the bench sizes.
    """

    BOUNDS_MS: tuple[float, ...] = (
        0.1,
        0.2,
        0.5,
        1.0,
        2.0,
        5.0,
        10.0,
        20.0,
        50.0,
        100.0,
        200.0,
        500.0,
        1_000.0,
        2_000.0,
        5_000.0,
        10_000.0,
    )

    def __init__(self) -> None:
        self._counts = [0] * (len(self.BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe_ms(self, value_ms: float) -> None:
        index = len(self.BOUNDS_MS)
        for i, bound in enumerate(self.BOUNDS_MS):
            if value_ms <= bound:
                index = i
                break
        self._counts[index] += 1
        self.count += 1
        self.sum_ms += value_ms
        if value_ms > self.max_ms:
            self.max_ms = value_ms

    def percentile(self, fraction: float) -> float:
        """The latency below which ``fraction`` of samples fall (0 if none)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.5))
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= rank:
                if index < len(self.BOUNDS_MS):
                    return self.BOUNDS_MS[index]
                return self.max_ms
        return self.max_ms

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
            "max_ms": self.max_ms,
        }


class ServerStats:
    """Server-wide counters, exposed through the ``stats`` frame.

    Mutated only on the event-loop thread; see the module docstring for
    the cross-thread reading contract.
    """

    def __init__(self) -> None:
        self.connections_active = 0
        self.connections_total = 0
        self.connections_peak = 0
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.docs_ok = 0
        self.docs_failed = 0
        self.queries_compiled = 0
        self.query_cache_hits = 0
        #: Seconds from pass start to the first result frame, per pass
        #: that produced output (empty results never have a first byte).
        self.ttfb = LatencyHistogram()

    # -- mutation hooks (event-loop thread only) ------------------------

    def connection_opened(self) -> None:
        self.connections_active += 1
        self.connections_total += 1
        if self.connections_active > self.connections_peak:
            self.connections_peak = self.connections_active

    def connection_closed(self) -> None:
        self.connections_active -= 1

    def frame_in(self, nbytes: int) -> None:
        self.frames_in += 1
        self.bytes_in += nbytes

    def frame_out(self, nbytes: int) -> None:
        self.frames_out += 1
        self.bytes_out += nbytes

    def observe_ttfb(self, seconds: float) -> None:
        self.ttfb.observe_ms(seconds * 1_000.0)

    def pass_finished(self, *, ok: bool) -> None:
        if ok:
            self.docs_ok += 1
        else:
            self.docs_failed += 1

    def query_registered(self, *, cached: bool) -> None:
        if cached:
            self.query_cache_hits += 1
        else:
            self.queries_compiled += 1

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable snapshot (the payload of a stats frame)."""
        return {
            "connections": {
                "active": self.connections_active,
                "total": self.connections_total,
                "peak": self.connections_peak,
            },
            "frames": {"in": self.frames_in, "out": self.frames_out},
            "bytes": {"in": self.bytes_in, "out": self.bytes_out},
            "docs": {"ok": self.docs_ok, "failed": self.docs_failed},
            "queries": {
                "compiled": self.queries_compiled,
                "cache_hits": self.query_cache_hits,
            },
            "ttfb": self.ttfb.snapshot(),
        }

    def summary(self) -> str:
        ttfb = self.ttfb.snapshot()
        return (
            f"{self.docs_ok} docs served ({self.docs_failed} failed) to "
            f"{self.connections_total} connection(s) "
            f"(peak {self.connections_peak} concurrent); "
            f"{self.bytes_in} B in / {self.bytes_out} B out; "
            f"ttfb p50 {ttfb['p50_ms']:.1f} ms / p99 {ttfb['p99_ms']:.1f} ms"
        )
