"""Streaming XQuery evaluation with combined static and dynamic buffer
minimization — a from-scratch reproduction of the GCX system
(Schmidt, Scherzinger, Koch: "Combined Static and Dynamic Analysis for
Effective Buffer Minimization in Streaming XQuery Evaluation", ICDE 2007).

Quickstart
----------
>>> from repro import GCXEngine
>>> query = '<out>{for $b in /bib/book return $b/title}</out>'
>>> doc = '<bib><book><title>T1</title></book><book><title>T2</title></book></bib>'
>>> result = GCXEngine().run(query, doc)
>>> result.output
'<out><title>T1</title><title>T2</title></out>'

Compile once, run many (static analysis happens a single time), and stream
the output incrementally instead of materializing it:

>>> session = GCXEngine().session(query)
>>> session.run(doc).output
'<out><title>T1</title><title>T2</title></out>'
>>> "".join(session.run_streaming(doc).serialized())
'<out><title>T1</title><title>T2</title></out>'

With a :class:`Schema` (parse a DTD via :func:`load_dtd` or
``Schema.from_dtd_text``), compilation additionally runs the
schema-constraint pass: ``GCXEngine().session(query, schema=schema)``
proves facts like "this variable's matches cannot nest", which certifies
zero-buffer evaluation for schema-determined queries (docs/SCHEMA.md).

The package layers (bottom-up): :mod:`repro.xmlio` (streams, trees, sinks),
:mod:`repro.xquery` (the XQ fragment), :mod:`repro.analysis` (projection
trees, roles, signOff insertion, the schema-constraint pass),
:mod:`repro.stream` (preprojection),
:mod:`repro.buffer` (active garbage collection), :mod:`repro.engine` (the
GCX engine, query sessions, the multi-query
:class:`~repro.engine.multi.MultiQuerySession`, and the concurrent
:class:`~repro.engine.pool.SessionPool`), :mod:`repro.baselines` (competitor
strategies), :mod:`repro.xmark` (benchmark data and queries) and
:mod:`repro.bench` (the Table 1 harness).  See README.md and
docs/ARCHITECTURE.md for the guided tour.
"""

from repro.analysis import (
    CompiledQuery,
    CompileOptions,
    Schema,
    SchemaConstraints,
    SchemaViolation,
    compile_query,
    load_dtd,
)
from repro.baselines import (
    ENGINES,
    FluxLikeEngine,
    NaiveDomEngine,
    ProjectionOnlyEngine,
    UnsupportedQueryError,
)
from repro.bench import (
    HarnessConfig,
    format_table1,
    latency_report,
    run_table1,
    shape_report,
)
from repro.buffer import BufferCostModel, BufferStats
from repro.engine import (
    EngineOptions,
    GCXEngine,
    MultiQuerySession,
    MultiRunStats,
    PoolResult,
    PoolStats,
    QuerySession,
    RunResult,
    SessionPool,
    StreamingRun,
)
from repro.xmark import TABLE1_QUERIES, XMARK_QUERIES, generate_xmark
from repro.xmlio import (
    GeneratorSink,
    StringSink,
    TokenSink,
    WriterSink,
    serialize_stream,
)
from repro.xquery import parse_query, unparse

__version__ = "1.7.0"

__all__ = [
    "GCXEngine",
    "EngineOptions",
    "RunResult",
    "QuerySession",
    "MultiQuerySession",
    "MultiRunStats",
    "SessionPool",
    "PoolResult",
    "PoolStats",
    "StreamingRun",
    "compile_query",
    "CompileOptions",
    "CompiledQuery",
    "Schema",
    "SchemaConstraints",
    "SchemaViolation",
    "load_dtd",
    "parse_query",
    "unparse",
    "evaluate",
    "ENGINES",
    "FluxLikeEngine",
    "NaiveDomEngine",
    "ProjectionOnlyEngine",
    "UnsupportedQueryError",
    "TokenSink",
    "StringSink",
    "WriterSink",
    "GeneratorSink",
    "serialize_stream",
    "BufferStats",
    "BufferCostModel",
    "generate_xmark",
    "XMARK_QUERIES",
    "TABLE1_QUERIES",
    "HarnessConfig",
    "run_table1",
    "format_table1",
    "shape_report",
    "latency_report",
    "__version__",
]


def evaluate(query: str, document: str, *, engine: str = "gcx") -> str:
    """One-shot evaluation: run ``query`` over ``document``, return output.

    Convenience wrapper over the engine registry; for repeated evaluation
    of the same query prefer :meth:`GCXEngine.session`, which performs the
    static analysis only once.
    """
    return ENGINES[engine]().run(query, document).output
