"""Command-line interface: ``gcx`` (installed via the console script).

Subcommands (see docs/CLI.md for sample output)::

    gcx run QUERY.xq DOC.xml [DOC.xml ...]         evaluate a query
    gcx run-multi Q.xq [Q.xq ...] -d DOC.xml       N queries, one shared scan
    gcx serve-batch QUERY.xq DOC.xml [...]         concurrent pool evaluation
    gcx serve [--port N] [--workers N]             network query server
    gcx analyze QUERY.xq                           show the static analysis
    gcx table1 [--sizes 256k,1m] [--engines ...]   reproduce Table 1
    gcx xmark SCALE [--seed N] [-o FILE]           generate a document
    gcx ablations [--scale F] [--queries Q1,...]   Section 6 ablation study
    gcx dtd                                        print the adapted XMark DTD

``gcx run`` with the default engine is fully streaming: the query is
compiled once, each document is read through the chunked file tokenizer,
and result fragments are written to stdout as soon as the evaluator
produces them — memory stays bounded by the buffer high watermark on the
input side and O(1) on the output side, however large the document or the
result.  Passing several documents amortizes the static analysis over all
of them (the compile-once/run-many session).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import CompileOptions, compile_query, load_dtd
from repro.baselines import ENGINES, UnsupportedQueryError
from repro.bench import (
    HarnessConfig,
    format_table1,
    latency_report,
    run_table1,
    shape_report,
)
from repro.xmark import generate_xmark
from repro.xquery import unparse

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gcx",
        description="Streaming XQuery with active garbage collection "
        "(GCX reproduction, ICDE 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="evaluate a query over documents")
    run_p.add_argument("query", help="query file, or '-' for stdin")
    run_p.add_argument(
        "document",
        nargs="+",
        help="XML document file(s); the query is compiled once for all",
    )
    run_p.add_argument("--engine", default="gcx", choices=sorted(ENGINES))
    run_p.add_argument(
        "--schema",
        metavar="PATH",
        default=None,
        help="DTD file; enables the schema-constraint pass (zero-buffer "
        "proofs, signoff strengthening) for this query",
    )
    run_p.add_argument("--stats", action="store_true", help="print buffer stats")
    run_p.add_argument(
        "--buffered",
        action="store_true",
        help="materialize each result in memory instead of streaming "
        "(streaming is the default for the gcx engine)",
    )

    serve_p = sub.add_parser(
        "serve-batch",
        help="evaluate many documents concurrently through a SessionPool",
    )
    serve_p.add_argument("query", help="query file, or '-' for stdin")
    serve_p.add_argument(
        "document",
        nargs="+",
        help="XML document file(s), evaluated concurrently, output in order",
    )
    serve_p.add_argument(
        "--workers", type=int, default=4, help="pool worker count (default 4)"
    )
    serve_p.add_argument(
        "--executor",
        default="thread",
        choices=("thread", "process"),
        help="thread workers share the warm DFA; process workers buy real "
        "CPU parallelism on multi-core hosts (default thread)",
    )
    serve_p.add_argument(
        "--chunksize",
        type=int,
        default=1,
        help="documents per pool task (batch small documents, default 1)",
    )
    serve_p.add_argument(
        "--stats",
        action="store_true",
        help="print per-document and pool-wide aggregate stats to stderr",
    )

    net_p = sub.add_parser(
        "serve",
        help="serve standing queries over the NDJSON line protocol "
        "(docs/SERVING.md); drains gracefully on SIGTERM",
    )
    net_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    net_p.add_argument(
        "--port",
        type=int,
        default=7733,
        help="bind port; 0 picks an ephemeral port (default 7733)",
    )
    net_p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="evaluation threads shared by all connections (default 4)",
    )
    net_p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request wall-clock ceiling in seconds; 0 disables "
        "(default 30)",
    )
    net_p.add_argument(
        "--idle-timeout",
        type=float,
        default=0.0,
        help="ceiling on completing one frame line, in seconds (slow-loris "
        "guard); 0 disables (default 0)",
    )
    net_p.add_argument(
        "--max-doc-bytes",
        type=int,
        default=None,
        help="per-document size ceiling in bytes (default 8 MiB)",
    )
    net_p.add_argument(
        "--schema",
        metavar="PATH",
        default=None,
        help="DTD file used as the default schema for every standing "
        "query; a register frame's own 'schema' field overrides it",
    )

    multi_p = sub.add_parser(
        "run-multi",
        help="evaluate many queries over each document in one shared scan",
    )
    multi_p.add_argument(
        "query",
        nargs="+",
        help="query files; all are compiled once and evaluated together",
    )
    multi_p.add_argument(
        "-d",
        "--doc",
        action="append",
        required=True,
        help="XML document file (repeatable); each is tokenized exactly "
        "once for all queries",
    )
    multi_p.add_argument(
        "--schema",
        metavar="PATH",
        default=None,
        help="DTD file; every member query is compiled with the "
        "schema-constraint pass",
    )
    multi_p.add_argument(
        "--stats",
        action="store_true",
        help="print shared-pass routing and buffer stats to stderr",
    )
    multi_p.add_argument(
        "--union",
        action="store_true",
        help="print the union projection tree (membership masks) first",
    )

    ana_p = sub.add_parser("analyze", help="show projection tree and rewriting")
    ana_p.add_argument("query", help="query file, or '-' for stdin")
    ana_p.add_argument("--no-early-updates", action="store_true")
    ana_p.add_argument("--no-redundancy-elimination", action="store_true")
    ana_p.add_argument(
        "--schema",
        metavar="PATH",
        default=None,
        help="DTD file; also print the schema-constraint report",
    )

    tab_p = sub.add_parser("table1", help="reproduce the paper's Table 1")
    tab_p.add_argument("--sizes", default="256k,512k,1m,2m")
    tab_p.add_argument("--engines", default=",".join(sorted(ENGINES)))
    tab_p.add_argument("--queries", default="Q1,Q6,Q8,Q13,Q20")
    tab_p.add_argument("--budget", type=float, default=120.0)
    tab_p.add_argument("--seed", type=int, default=42)

    gen_p = sub.add_parser("xmark", help="generate an XMark document")
    gen_p.add_argument("scale", type=float)
    gen_p.add_argument("--seed", type=int, default=42)
    gen_p.add_argument("-o", "--output", default="-")

    abl_p = sub.add_parser("ablations", help="Section 6 optimization ablations")
    abl_p.add_argument("--scale", type=float, default=0.002)
    abl_p.add_argument("--queries", default="Q1,Q13,Q20")
    abl_p.add_argument(
        "--schema",
        metavar="PATH",
        default=None,
        help="DTD file; adds a 'with-schema' ablation row (use 'xmark' "
        "for the built-in XMark DTD)",
    )

    sub.add_parser("dtd", help="print the adapted XMark DTD")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve-batch":
        return _cmd_serve_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "run-multi":
        return _cmd_run_multi(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "xmark":
        return _cmd_xmark(args)
    if args.command == "ablations":
        return _cmd_ablations(args)
    if args.command == "dtd":
        from repro.xmark.dtd import render_dtd

        print(render_dtd(), end="")
        return 0
    return 2


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _load_schema(path: str | None):
    """``--schema PATH`` -> :class:`~repro.analysis.schema.Schema` or None."""
    if path is None:
        return None
    return load_dtd(path)


def _cmd_run(args) -> int:
    query = _read(args.query)
    engine = ENGINES[args.engine]()
    try:
        schema = _load_schema(args.schema)
        compiled = engine.compile(query, schema=schema)
    except UnsupportedQueryError as error:
        print(f"n/a: {error}", file=sys.stderr)
        return 1
    if args.stats and compiled.constraints is not None:
        print(f"schema: {compiled.constraints.summary()}", file=sys.stderr)
    if args.stats and args.engine == "gcx":
        # Compile-time relational telemetry: which loops the join planner
        # dispatched to the hash operator (run-time probe/accumulator
        # counters appear in each document's stats summary line).
        sites = compiled.joinplan.describe()
        if sites:
            for line in sites:
                print(f"join plan: {line}", file=sys.stderr)
        else:
            print("join plan: no equi-join loops", file=sys.stderr)
    if args.engine == "gcx" and not args.buffered:
        return _run_streaming(engine, compiled, args)
    for path in args.document:
        result = engine.run(compiled, _read(path))
        print(result.output)
        if args.stats:
            print(f"{path}: {result.stats.summary()}", file=sys.stderr)
    return 0


def _run_streaming(engine, compiled, args) -> int:
    """Compile-once/run-many evaluation with incremental stdout output."""
    from repro.xmlio import tokenize_file

    session = engine.session(compiled)
    for path in args.document:
        tokens = tokenize_file(sys.stdin if path == "-" else path)
        stream = session.run_streaming(tokens)
        for fragment in stream.serialized():
            sys.stdout.write(fragment)
            # Flush per fragment: a piped consumer must see output as it
            # is decided, not when the 8KB stdio buffer happens to fill.
            sys.stdout.flush()
        sys.stdout.write("\n")
        sys.stdout.flush()
        result = stream.result
        if args.stats:
            latency = (
                f"{result.first_output_seconds * 1000:.1f}ms"
                if result.first_output_seconds is not None
                else "n/a (empty result)"
            )
            print(
                f"{path}: {result.stats.summary()}; "
                f"first output after {latency}",
                file=sys.stderr,
            )
    return 0


def _cmd_serve_batch(args) -> int:
    """Concurrent multi-document evaluation through one SessionPool.

    Results are printed in document order (``map`` is ordered and
    backpressured, so arbitrarily many documents stream through bounded
    memory); the pool-wide aggregate high watermark goes to stderr.
    """
    import time
    from pathlib import Path

    from repro.engine.pool import SessionPool

    query = _read(args.query)
    if args.workers < 1:
        print("ERROR: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.chunksize < 1:
        print("ERROR: --chunksize must be >= 1", file=sys.stderr)
        return 2
    started = time.perf_counter()
    with SessionPool(
        query,
        max_workers=args.workers,
        executor=args.executor,
    ) as pool:
        documents = [Path(path) for path in args.document]
        for path, result in zip(
            args.document, pool.map(documents, chunksize=args.chunksize)
        ):
            print(result.output)
            if args.stats:
                print(
                    f"{path}: hwm {result.hwm_nodes} nodes / "
                    f"{result.hwm_bytes} bytes; "
                    f"{result.tokens_read} tokens read",
                    file=sys.stderr,
                )
        elapsed = time.perf_counter() - started
    # Snapshot after close(): executor shutdown has run every future's
    # done-callback, so process-mode run counters are exact here.
    stats = pool.stats
    if args.stats:
        rate = len(args.document) / elapsed if elapsed > 0 else float("inf")
        print(
            f"pool: {stats.summary()}; "
            f"{len(args.document)} document(s) in {elapsed:.3f}s "
            f"({rate:.0f} docs/s)",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    """The network front-end: standing queries over NDJSON frames.

    Blocks until SIGTERM/SIGINT, then drains gracefully: in-flight
    passes finish, idle connections get a ``bye`` frame, and every
    standing query's pool is closed with its checkouts settled.
    """
    from repro.serve import ServeConfig, run_server

    if args.workers < 1:
        print("ERROR: --workers must be >= 1", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        eval_workers=args.workers,
        request_timeout=args.timeout if args.timeout > 0 else None,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        schema=_load_schema(args.schema),
        **(
            {"max_document_bytes": args.max_doc_bytes}
            if args.max_doc_bytes is not None
            else {}
        ),
    )

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    return run_server(config, log=log)


def _cmd_run_multi(args) -> int:
    """Multi-query shared-scan evaluation: N queries, one pass per document.

    Every document is tokenized exactly once; the shared dispatcher routes
    each token to the queries whose membership bitmask still includes it.
    Results are printed grouped per document, one ``== name ==`` section
    per query, in query order.
    """
    from pathlib import Path

    from repro.engine.multi import MultiQuerySession

    names: list[str] = []
    queries: dict[str, str] = {}
    for path in args.query:
        name = Path(path).stem
        if name in queries:
            print(f"ERROR: duplicate query name {name!r}", file=sys.stderr)
            return 2
        names.append(name)
        queries[name] = _read(path)
    session = MultiQuerySession(queries, schema=_load_schema(args.schema))
    if args.union:
        print("== union projection tree ==")
        print(session.format_union())
    from repro.xmlio.serialize import StringSink

    for doc_path in args.doc:
        stream = session.run_streaming(Path(doc_path))
        sinks = {name: StringSink() for name in names}
        for name, token in stream:
            sinks[name].write(token)
        if len(args.doc) > 1:
            print(f"# {doc_path}")
        for name in names:
            sinks[name].close()
            print(f"== {name} ==")
            print(sinks[name].getvalue())
        if args.stats:
            print(f"{doc_path}: {stream.stats.summary()}", file=sys.stderr)
    return 0


def _cmd_analyze(args) -> int:
    options = CompileOptions(
        early_updates=not args.no_early_updates,
        eliminate_redundant=not args.no_redundancy_elimination,
    )
    compiled = compile_query(
        _read(args.query), options, schema=_load_schema(args.schema)
    )
    print("== normalized query ==")
    print(unparse(compiled.normalized, indent=2))
    print("\n== projection tree ==")
    print(compiled.projection_tree.format(merge_roleless=True))
    print("\n== rewritten query (with signOff statements) ==")
    print(unparse(compiled.rewritten, indent=2))
    if compiled.eliminated_roles:
        names = ", ".join(role.name for role in compiled.eliminated_roles)
        print(f"\neliminated redundant roles: {names}")
    straight = {
        var: compiled.straight.fsa(var) for var in compiled.variables.names
    }
    print(f"\nfsa: {straight}")
    if compiled.constraints is not None:
        print("\n== schema constraints ==")
        print(compiled.constraints.summary())
    return 0


def _cmd_table1(args) -> int:
    sizes = tuple(_parse_size(token) for token in args.sizes.split(","))
    config = HarnessConfig(
        sizes_bytes=sizes,
        engines=tuple(args.engines.split(",")),
        queries=tuple(args.queries.split(",")),
        seed=args.seed,
        cell_budget_seconds=args.budget,
    )

    def progress(cell):
        print(
            f"  {cell.query} {cell.engine} {cell.doc_bytes}B -> {cell.cell}",
            file=sys.stderr,
        )

    measurements = run_table1(config, progress=progress)
    print(format_table1(measurements))
    print(shape_report(measurements))
    print()
    print(latency_report(measurements))
    return 0


def _cmd_xmark(args) -> int:
    document = generate_xmark(args.scale, seed=args.seed)
    if args.output == "-":
        sys.stdout.write(document)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {len(document):,} bytes to {args.output}", file=sys.stderr)
    return 0


def _cmd_ablations(args) -> int:
    from repro.bench.ablation import format_ablations, run_ablations
    from repro.xmark import XMARK_QUERIES, generate_xmark

    document = generate_xmark(args.scale, seed=42)
    queries = {
        name: XMARK_QUERIES[name].adapted for name in args.queries.split(",")
    }
    if args.schema == "xmark":
        from repro.xmark.schema import xmark_schema

        schema = xmark_schema()
    else:
        schema = _load_schema(args.schema)
    print(f"document: {len(document):,} bytes\n", file=sys.stderr)
    print(format_ablations(run_ablations(queries, document, schema=schema)))
    return 0


def _parse_size(token: str) -> int:
    token = token.strip().lower()
    factor = 1
    if token.endswith("k"):
        factor, token = 1_000, token[:-1]
    elif token.endswith("m"):
        factor, token = 1_000_000, token[:-1]
    return int(float(token) * factor)


if __name__ == "__main__":
    raise SystemExit(main())
